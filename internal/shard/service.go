package shard

// Wall-clock sharded service: N independent core.Services (one engine
// shard each, its own Realtime driver goroutine) behind one Submit front.
// Requests whose access list lies on a single shard go straight to that
// shard's service — the scaling path: submissions to different shards
// never contend on a driver goroutine. Cross-shard requests are queued and
// flushed to their shards in canonical FIFO order at wall-clock epoch
// ticks, the wall analogue of the virtual runner's boundary exchange.
//
// Unlike the virtual Runner, the wall-clock service is not deterministic —
// arrival instants come from the wall — and it has no cross-shard atomic
// commit: sub-transactions commit or fail per shard (a rejection on one
// shard does not undo the siblings). The merged outcome reports the
// logical fate (committed iff every part committed); workloads where
// partial application is unacceptable should run with AdmitAll admission
// and soft deadlines, where parts only fail if the service itself stops.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/wal"
)

// SuperviseOptions control shard-failure containment.
type SuperviseOptions struct {
	// Enabled turns on supervision: a shard driver that fails (panic,
	// stall, oracle violation) is contained instead of fatal — its
	// inflight transactions are answered with core.ErrEngineFailed by
	// the core failure sweep, the service reports Degraded, and the
	// surviving shards keep serving their part of the item space.
	// Disabled (the default), any shard failure stops the whole service.
	Enabled bool
	// Restart additionally replaces a permanently-failed shard with a
	// fresh engine. The fresh engine starts empty: the failed shard's
	// admitted work has already been failed, and its statistics are
	// gone — restart trades state for capacity.
	Restart bool
	// MaxRestarts bounds restarts per shard (default 3); past it the
	// shard stays dead.
	MaxRestarts int
}

func (o SuperviseOptions) maxRestarts() int {
	if o.MaxRestarts > 0 {
		return o.MaxRestarts
	}
	return 3
}

// SupervisionStats is a point-in-time view of shard-failure containment.
type SupervisionStats struct {
	Enabled bool `json:"enabled"`
	Shards  int  `json:"shards"`
	// Dead counts shards that are permanently down (no restart left).
	Dead int `json:"dead"`
	// Failures counts shard-driver failures since start (restarted or
	// not).
	Failures int `json:"failures"`
	// Restarts counts fresh engines swapped in for failed shards.
	Restarts int `json:"restarts"`
	// LastFailure is the most recent shard failure, for /metrics.
	LastFailure string `json:"last_failure,omitempty"`
}

// ServiceOptions configure the sharded wall-clock service.
type ServiceOptions struct {
	// Shards is the number of engine shards (1..64).
	Shards int
	// Epoch is the simulated-time cross-shard batching interval
	// (0 = DefaultEpoch). The wall flush period is Epoch divided by the
	// core speed factor.
	Epoch time.Duration
	// Core tunes each shard's wall-clock service (speed, sample window,
	// oracle).
	Core core.ServiceOptions
	// Supervise contains shard-driver failures instead of letting one
	// panicking shard kill the whole service.
	Supervise SuperviseOptions
	// WAL, when non-nil, makes submissions durable at the service level:
	// records are appended before routing, so one log orders the whole
	// sharded system and replay re-routes through the same footprint
	// logic. The per-shard cores always run without a WAL of their own
	// (Core.WAL is ignored).
	WAL *wal.Logger
}

// partReq is one shard's slice of a cross-shard request.
type partReq struct {
	shard int
	req   core.ServiceRequest
}

// pendingCross is a queued cross-shard submission waiting for the next
// epoch flush.
type pendingCross struct {
	ctx   context.Context
	parts []partReq
	out   chan crossResult
}

type crossResult struct {
	outcome core.ServiceOutcome
	err     error
}

// Service is the sharded wall-clock transaction service.
type Service struct {
	cfg       core.Config
	n         int
	coreOpt   core.ServiceOptions
	sup       SuperviseOptions
	wal       core.WALHook
	wallEpoch time.Duration

	// svcMu guards the shard table and its supervision bookkeeping; the
	// table entries are swapped when a supervised shard restarts, so
	// every access goes through shard()/allShards().
	svcMu     sync.RWMutex
	svcs      []*core.Service
	dead      []bool  // permanently down (supervised, out of restarts — or unsupervised failure)
	failures  []error // last failure per shard, sticky across restarts
	restarts  []int
	failTotal int
	lastFail  error
	// predict is true for conflict-prediction policies (CCA-P/CCA-T) with
	// more than one shard: at every epoch tick the per-shard statistics
	// tables are merged (ascending shard order) and the same frozen view is
	// installed on every shard — the wall-clock analogue of the virtual
	// runner's boundary merge.
	predict bool

	stopCh chan struct{}

	mu       sync.Mutex
	draining bool
	queue    []*pendingCross
}

// NewService builds an N-shard wall-clock service. Every shard runs the
// same configuration (policy, admission rule, database size — items keep
// their global numbering).
func NewService(cfg core.Config, opt ServiceOptions) (*Service, error) {
	if opt.Shards < 1 || opt.Shards > 64 {
		return nil, fmt.Errorf("shard: %d shards (want 1..64)", opt.Shards)
	}
	epoch := opt.Epoch
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	speed := opt.Core.Speed
	if speed <= 0 {
		speed = 1
	}
	// Durability is a service-level concern: the shard cores must not
	// double-log, so the logger lives on this service and the per-shard
	// option is forced off (restarted shards inherit the same coreOpt).
	opt.Core.WAL = nil
	wall := time.Duration(float64(epoch) / speed)
	if wall < time.Millisecond {
		wall = time.Millisecond // don't busy-tick at extreme test speeds
	}
	s := &Service{
		cfg:       cfg,
		n:         opt.Shards,
		coreOpt:   opt.Core,
		sup:       opt.Supervise,
		wal:       core.WALHook{Log: opt.WAL},
		wallEpoch: wall,
		stopCh:    make(chan struct{}),
		dead:      make([]bool, opt.Shards),
		failures:  make([]error, opt.Shards),
		restarts:  make([]int, opt.Shards),
	}
	for i := 0; i < opt.Shards; i++ {
		sv, err := core.NewService(cfg, opt.Core)
		if err != nil {
			return nil, err
		}
		s.svcs = append(s.svcs, sv)
	}
	s.predict = opt.Shards > 1 && (cfg.Policy == core.CCAP || cfg.Policy == core.CCAT)
	return s, nil
}

// Shards returns the shard count.
func (s *Service) Shards() int { return s.n }

// shard returns shard i's current service (supervised restarts swap the
// table entries, so callers must not cache the pointer across requests).
func (s *Service) shard(i int) *core.Service {
	s.svcMu.RLock()
	defer s.svcMu.RUnlock()
	return s.svcs[i]
}

// allShards snapshots the shard table.
func (s *Service) allShards() []*core.Service {
	s.svcMu.RLock()
	defer s.svcMu.RUnlock()
	return append([]*core.Service(nil), s.svcs...)
}

func (s *Service) markDead(i int) {
	s.svcMu.Lock()
	s.dead[i] = true
	s.svcMu.Unlock()
}

func (s *Service) deadShards() int {
	s.svcMu.RLock()
	defer s.svcMu.RUnlock()
	n := 0
	for _, d := range s.dead {
		if d {
			n++
		}
	}
	return n
}

// noteFailure records a shard-driver failure and reports the restart
// count consumed so far.
func (s *Service) noteFailure(i int, err error) int {
	s.svcMu.Lock()
	defer s.svcMu.Unlock()
	s.failures[i] = err
	s.lastFail = err
	s.failTotal++
	return s.restarts[i]
}

// Run drives every shard service and the cross-shard batcher until ctx
// is cancelled or the shards stop. Unsupervised (the default), any
// shard failure stops all shards and Run returns it. Supervised, shard
// failures are contained per SuperviseOptions and Run keeps serving
// until cancellation or until every shard is permanently dead; it then
// returns the first shard failure (if any), so a degraded-then-drained
// service still reports what went wrong. Must be called exactly once.
func (s *Service) Run(ctx context.Context) error {
	defer close(s.stopCh)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errCh := make(chan error, s.n)
	for i := 0; i < s.n; i++ {
		i := i
		go func() { errCh <- s.supervise(ctx, i) }()
	}
	tick := time.NewTicker(s.wallEpoch)
	defer tick.Stop()
	var first error
	for running := s.n; running > 0; {
		select {
		case <-tick.C:
			s.flush()
			s.mergePredict()
		case err := <-errCh:
			running--
			if first == nil {
				first = err
			}
			// Unsupervised: any shard exit stops the service. Supervised:
			// shards die independently; stop only when none are left.
			if !s.sup.Enabled || s.deadShards() == s.n {
				cancel()
			}
		}
	}
	s.failQueued(core.ErrServiceStopped)
	return first
}

// supervise runs shard i until ctx cancellation or permanent death. An
// unexpected exit is recorded (Degraded, SupervisionStats); when
// Restart allows, a fresh engine is swapped into the shard table and
// driven in place of the dead one. The failed engine's inflight work
// was already answered by the core failure sweep before its Run
// returned, so containment never strands a waiter.
func (s *Service) supervise(ctx context.Context, i int) error {
	for {
		sv := s.shard(i)
		err := sv.Run(ctx)
		if ctx.Err() != nil || err == nil || errors.Is(err, context.Canceled) {
			return err
		}
		used := s.noteFailure(i, err)
		if !s.sup.Enabled || !s.sup.Restart || used >= s.sup.maxRestarts() || s.Draining() {
			s.markDead(i)
			return err
		}
		fresh, nerr := core.NewService(s.cfg, s.coreOpt)
		if nerr != nil {
			s.markDead(i)
			return err
		}
		s.svcMu.Lock()
		s.svcs[i] = fresh
		s.restarts[i]++
		s.svcMu.Unlock()
	}
}

// Degraded reports partial capacity loss: some shard driver has failed
// since the service started. Deliberately sticky across restarts — a
// restarted shard lost its admitted work and statistics, so /healthz
// keeps surfacing the event until the process is replaced.
func (s *Service) Degraded() bool {
	s.svcMu.RLock()
	defer s.svcMu.RUnlock()
	return s.failTotal > 0
}

// SupervisionStats snapshots shard-failure containment for /metrics.
func (s *Service) SupervisionStats() SupervisionStats {
	s.svcMu.RLock()
	defer s.svcMu.RUnlock()
	st := SupervisionStats{
		Enabled:  s.sup.Enabled,
		Shards:   s.n,
		Failures: s.failTotal,
	}
	for i := range s.dead {
		if s.dead[i] {
			st.Dead++
		}
		st.Restarts += s.restarts[i]
	}
	if s.lastFail != nil {
		st.LastFailure = s.lastFail.Error()
	}
	return st
}

// InjectShardPanic crashes shard i's engine driver (fault tooling; see
// core.Service.InjectPanic) — the supervision story's test hook.
func (s *Service) InjectShardPanic(i int, msg string) error {
	if i < 0 || i >= s.n {
		return fmt.Errorf("shard: no shard %d", i)
	}
	return s.shard(i).InjectPanic(msg)
}

// Submit routes one request: single-shard requests go straight to their
// shard's engine; cross-shard requests wait for the next epoch flush (so
// they lose up to one epoch of deadline budget — size Epoch accordingly)
// and then fan out to every touched shard.
func (s *Service) Submit(ctx context.Context, req core.ServiceRequest) (core.ServiceOutcome, error) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return core.ServiceOutcome{}, core.ErrDraining
	}
	if !s.wal.Enabled() {
		return s.submit(ctx, req)
	}
	// Durable path: submit record before routing, answer released only
	// once the outcome record is fsynced (see core.WALHook).
	seq, err := s.wal.LogSubmit(&req)
	if err != nil {
		return core.ServiceOutcome{}, err
	}
	type res struct {
		o   core.ServiceOutcome
		err error
	}
	ch := make(chan res, 1)
	deliver := s.wal.WrapDone(seq, false, func(o core.ServiceOutcome, err error) { ch <- res{o, err} })
	o, err := s.submit(ctx, req)
	deliver(o, err)
	r := <-ch
	return r.o, r.err
}

// submit is Submit's routing body, shared by the durable and direct
// paths.
func (s *Service) submit(ctx context.Context, req core.ServiceRequest) (core.ServiceOutcome, error) {
	mask := txn.ShardsTouched(req.Items, s.n)
	if mask&(mask-1) == 0 {
		home := 0
		for mask > 1 {
			mask >>= 1
			home++
		}
		return s.shard(home).Submit(ctx, req)
	}
	pc := &pendingCross{
		ctx:   ctx,
		parts: splitRequest(req, s.n),
		out:   make(chan crossResult, 1),
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return core.ServiceOutcome{}, core.ErrDraining
	}
	s.queue = append(s.queue, pc)
	s.mu.Unlock()
	select {
	case r := <-pc.out:
		return r.outcome, r.err
	case <-s.stopCh:
		return core.ServiceOutcome{}, core.ErrServiceStopped
	case <-ctx.Done():
		// The flush may already hold the request; the parts themselves
		// carry ctx and are wounded by their shards. Wait for the merged
		// outcome rather than abandoning the channel.
		select {
		case r := <-pc.out:
			if r.err == nil {
				r.err = ctx.Err()
			}
			return r.outcome, r.err
		case <-s.stopCh:
			return core.ServiceOutcome{}, core.ErrServiceStopped
		}
	}
}

// SubmitBatch is the batched ingestion path (see core.Service.SubmitBatch;
// the contract is identical — every Submission.Done fires exactly once).
// Single-shard submissions are grouped by home shard and injected with one
// driver call per touched shard, so a batch of K requests costs at most
// N driver wakeups instead of K. Cross-shard submissions join the normal
// epoch queue; their handles cancel the whole fan-out via a shared
// context.
func (s *Service) SubmitBatch(subs []core.Submission) []core.SubmitHandle {
	handles := make([]core.SubmitHandle, len(subs))
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		for i := range subs {
			subs[i].Done(core.ServiceOutcome{}, core.ErrDraining)
		}
		return handles
	}
	s.mu.Unlock()

	// Durability first, so every later path — home-shard injection,
	// cross-shard fan-out, even validation failures inside the shard —
	// flows through the log's resolve-or-replay accounting. Replays
	// (WALSeq set) keep their existing record.
	if s.wal.Enabled() {
		for i := range subs {
			sub := &subs[i]
			seq, replay := sub.WALSeq, sub.WALSeq != 0
			if !replay {
				var err error
				if seq, err = s.wal.LogSubmit(&sub.Req); err != nil {
					// Logging is down (sticky failure): answer and mark the
					// entry answered so no later path touches it.
					sub.Done(core.ServiceOutcome{}, err)
					sub.Done = nil
					continue
				}
				sub.WALSeq = seq
			}
			sub.Done = s.wal.WrapDone(seq, replay, sub.Done)
		}
	}

	// Group by home shard; -1 marks cross-shard entries.
	byShard := make([][]int, s.n)
	for i := range subs {
		if subs[i].Done == nil {
			continue // already answered: WAL append failed above
		}
		mask := txn.ShardsTouched(subs[i].Req.Items, s.n)
		if mask != 0 && mask&(mask-1) == 0 {
			home := 0
			for mask > 1 {
				mask >>= 1
				home++
			}
			byShard[home] = append(byShard[home], i)
			continue
		}
		// Cross-shard (or empty — validation inside the shard rejects it):
		// one epoch-queue entry with a cancellable fan-out context.
		i := i
		ctx, cancel := context.WithCancel(context.Background())
		pc := &pendingCross{
			ctx:   ctx,
			parts: splitRequest(subs[i].Req, s.n),
			out:   make(chan crossResult, 1),
		}
		if len(pc.parts) == 0 {
			cancel()
			subs[i].Done(core.ServiceOutcome{}, fmt.Errorf("core: transaction accesses no items"))
			continue
		}
		handles[i] = core.CancelHandle(cancel)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			cancel()
			subs[i].Done(core.ServiceOutcome{}, core.ErrDraining)
			continue
		}
		s.queue = append(s.queue, pc)
		s.mu.Unlock()
		go func() {
			defer cancel()
			select {
			case r := <-pc.out:
				subs[i].Done(r.outcome, r.err)
			case <-s.stopCh:
				subs[i].Done(core.ServiceOutcome{}, core.ErrServiceStopped)
			}
		}()
	}
	for shard, idxs := range byShard {
		if len(idxs) == 0 {
			continue
		}
		group := make([]core.Submission, len(idxs))
		for k, i := range idxs {
			group[k] = subs[i]
		}
		for k, h := range s.shard(shard).SubmitBatch(group) {
			handles[idxs[k]] = h
		}
	}
	return handles
}

// flush drains the cross-shard queue: each queued request fans out to its
// shards concurrently (a slow shard must not serialise the whole batch),
// but the queue is dispatched in FIFO order so same-epoch requests reach
// each shard's driver in a consistent arrival order.
func (s *Service) flush() {
	s.mu.Lock()
	batch := s.queue
	s.queue = nil
	s.mu.Unlock()
	for _, pc := range batch {
		pc := pc
		go func() {
			outcome, err := s.fanOut(pc)
			pc.out <- crossResult{outcome, err}
		}()
	}
}

// mergePredict folds every shard's conflict-statistics table into one
// merged table (ascending shard order) and installs it as the read view on
// every shard. Per-shard recording continues into the shards' own tables;
// only the priced rates are globalised. Decayed reads on a Table are pure,
// so the shared view is safe for the shards' concurrent driver goroutines.
func (s *Service) mergePredict() {
	if !s.predict {
		return
	}
	var merged *predict.Table
	shards := s.allShards()
	for _, sv := range shards {
		snap, ok := sv.PredictSnapshot()
		if !ok || snap.Table == nil {
			if s.sup.Enabled {
				continue // dead or restarting shard: merge the survivors
			}
			return // a shard is stopping; skip this tick
		}
		if merged == nil {
			merged = snap.Table // PredictSnapshot clones — ours to own
		} else {
			merged.Merge(snap.Table)
		}
	}
	if merged == nil {
		return
	}
	for _, sv := range shards {
		if err := sv.SetPredictView(merged); err != nil && !s.sup.Enabled {
			return
		}
	}
}

// fanOut submits one cross request's parts to their shards concurrently
// and folds the results into the logical outcome: committed iff every
// part committed; a rejection dominates a drop; finish is the latest part;
// restarts sum. The first per-part error (by shard order) is returned.
func (s *Service) fanOut(pc *pendingCross) (core.ServiceOutcome, error) {
	outs := make([]core.ServiceOutcome, len(pc.parts))
	errs := make([]error, len(pc.parts))
	var wg sync.WaitGroup
	wg.Add(len(pc.parts))
	for i, p := range pc.parts {
		i, p := i, p
		go func() {
			defer wg.Done()
			outs[i], errs[i] = s.shard(p.shard).Submit(pc.ctx, p.req)
		}()
	}
	wg.Wait()
	var firstErr error
	o := core.ServiceOutcome{State: core.StateCommitted}
	for i, po := range outs {
		if errs[i] != nil && firstErr == nil {
			firstErr = errs[i]
		}
		o.Restarts += po.Restarts
		if po.Arrival > 0 && (o.Arrival == 0 || po.Arrival < o.Arrival) {
			o.Arrival = po.Arrival
		}
		if po.Deadline > o.Deadline {
			o.Deadline = po.Deadline
		}
		switch po.State {
		case core.StateRejected:
			o.State = core.StateRejected
		case core.StateDropped:
			if o.State != core.StateRejected {
				o.State = core.StateDropped
			}
		case core.StateCommitted:
			if po.Finish > o.Finish {
				o.Finish = po.Finish
			}
		default: // zero outcome from an errored part
			if o.State == core.StateCommitted {
				o.State = core.StateDropped
			}
		}
	}
	if firstErr != nil && o.State == core.StateCommitted {
		o.State = core.StateDropped
	}
	if o.State == core.StateCommitted {
		o.Response = o.Finish - o.Arrival
		o.Missed = o.Finish > o.Deadline
	} else {
		o.Finish, o.Response, o.Missed = 0, 0, true
	}
	return o, firstErr
}

// splitRequest cuts a cross-shard request into per-shard parts, ascending
// by shard, preserving per-shard item order and realigning the per-update
// flags (the wall-clock analogue of workload.Spec.SplitShards).
func splitRequest(req core.ServiceRequest, n int) []partReq {
	parts := make([]partReq, 0, 2)
	for shard := 0; shard < n; shard++ {
		var items []txn.Item
		var reads, io []bool
		for u, it := range req.Items {
			if txn.ShardOf(it, n) != shard {
				continue
			}
			items = append(items, it)
			if len(req.Reads) > 0 {
				reads = append(reads, req.Reads[u])
			}
			if len(req.NeedsIO) > 0 {
				io = append(io, req.NeedsIO[u])
			}
		}
		if len(items) == 0 {
			continue
		}
		parts = append(parts, partReq{shard: shard, req: core.ServiceRequest{
			Items:       items,
			Reads:       reads,
			NeedsIO:     io,
			Compute:     req.Compute,
			Deadline:    req.Deadline,
			Criticality: req.Criticality,
			Class:       req.Class,
		}})
	}
	return parts
}

// Drain flips the service to refusing new work, fails the queued (not yet
// started) cross-shard submissions with ErrDraining, and drains every
// shard concurrently. Returns nil when all shards drained naturally, the
// first context error when stragglers were wounded.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.failQueued(core.ErrDraining)
	errs := make([]error, s.n)
	var wg sync.WaitGroup
	wg.Add(s.n)
	for i, sv := range s.allShards() {
		i, sv := i, sv
		go func() {
			defer wg.Done()
			errs[i] = sv.Drain(ctx)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// failQueued answers every queued cross submission with err.
func (s *Service) failQueued(err error) {
	s.mu.Lock()
	batch := s.queue
	s.queue = nil
	s.mu.Unlock()
	for _, pc := range batch {
		pc.out <- crossResult{err: err}
	}
}

// InjectEvent feeds a forged trace event through shard 0's engine (fault
// tooling; see core.Service.InjectEvent). Shard 0 is arbitrary but fixed —
// the oracle under test is per-shard and identical on all of them.
func (s *Service) InjectEvent(ev trace.Event) error {
	return s.shard(0).InjectEvent(ev)
}

// Draining reports whether graceful drain has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Err reports the failure that stops (or stopped) the whole service.
// Unsupervised, that is the first shard failure (by shard index).
// Supervised, individual shard failures are contained — surfaced via
// Degraded and SupervisionStats, not Err — and Err stays nil until
// every shard is permanently dead.
func (s *Service) Err() error {
	if !s.sup.Enabled {
		for _, sv := range s.allShards() {
			if err := sv.Err(); err != nil {
				return err
			}
		}
		return nil
	}
	s.svcMu.RLock()
	defer s.svcMu.RUnlock()
	dead := 0
	var first error
	for i := range s.dead {
		if s.dead[i] {
			dead++
			if first == nil {
				first = s.failures[i]
			}
		}
	}
	if dead < s.n {
		return nil
	}
	if first != nil {
		return fmt.Errorf("shard: all %d shards failed: %w", s.n, first)
	}
	return fmt.Errorf("shard: all %d shards failed", s.n)
}

// Stats returns the system-wide snapshot: the shards' run counters merged
// with metrics.MergeRuns (exact counter sums, one percentile window over
// the union of recent commits — never a biased average of per-shard
// Results), live summed, clock = the furthest shard. ok=false once any
// shard has stopped.
func (s *Service) Stats() (core.ServiceStats, bool) {
	runs := make([]*metrics.Run, 0, s.n)
	st := core.ServiceStats{}
	for _, sv := range s.allShards() {
		run, live, now, ok := sv.RunSnapshot()
		if !ok {
			// Supervised, a dead or mid-restart shard just drops out of
			// the merged view — the survivors' numbers stay observable.
			if s.sup.Enabled {
				continue
			}
			return core.ServiceStats{}, false
		}
		rc := run
		runs = append(runs, &rc)
		st.Live += live
		if now > st.Now {
			st.Now = now
		}
	}
	if len(runs) == 0 {
		return core.ServiceStats{}, false
	}
	merged := metrics.MergeRuns(runs...)
	st.Result = merged.Result()
	st.Predict = s.predictStats(st.Now)
	return st, true
}

// predictStats builds the system-wide prediction snapshot: the per-shard
// tables merged (exact — integer sums are order-free), pair statistics
// recomputed from the merged table at the merged clock, tuner steps summed
// across shards, and W from shard 0 (each shard tunes independently; shard
// 0 is the fixed representative). Nil for non-predictive policies.
func (s *Service) predictStats(now time.Duration) *core.PredictSnapshot {
	if s.cfg.Policy != core.CCAP && s.cfg.Policy != core.CCAT {
		return nil
	}
	var tab *predict.Table
	ps := core.PredictSnapshot{Policy: s.cfg.Policy}
	for _, sv := range s.allShards() {
		snap, ok := sv.PredictSnapshot()
		if !ok || snap.Table == nil {
			if s.sup.Enabled {
				continue // dead or restarting shard: report the survivors
			}
			return nil
		}
		if tab == nil {
			// First live shard is the representative for the tuned weight
			// (each shard tunes independently).
			ps.W = snap.W
			ps.WTrajectory = snap.WTrajectory
			tab = snap.Table
		} else {
			tab.Merge(snap.Table)
		}
		ps.TunerSteps += snap.TunerSteps
	}
	if tab == nil {
		return nil
	}
	ps.ActivePairs = tab.ActivePairs(now)
	ps.TopPairs = tab.TopPairs(now, 8)
	ps.Table = tab
	return &ps
}
