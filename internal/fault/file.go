// File-level fault injection for the durability layer. A FilePlan
// declares per-operation probabilities of the failure shapes that
// matter to a write-ahead log — torn writes, short writes, fsync
// errors, silent corruption — and WrapFile wraps a segment file so
// those faults fire deterministically from a named random substream of
// the run seed, following the same conventions as the simulator Plan
// above and internal/chaos: the zero plan is a proven identity (the
// very same file handle back, no wrapper in the path), unknown JSON
// fields are rejected, and the same (seed, file name, plan) triple
// always produces the same fault sequence regardless of timing.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/stats"
)

// FileOps is the slice of a file handle the injector interposes on.
// It is structurally identical to wal.File, so a thin closure adapts
// WrapFile to wal.Options.WrapFile without an import cycle.
type FileOps interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FilePlan declares file-level faults. The zero value injects nothing:
// WrapFile returns the wrapped handle itself.
type FilePlan struct {
	// TornWriteProb is the per-Write probability that only a prefix of
	// the buffer reaches the file and the write reports an error — the
	// on-disk shape of a crash mid-write.
	TornWriteProb float64 `json:"torn_write_prob,omitempty"`
	// ShortWriteProb is the per-Write probability that only a prefix is
	// written and the write reports success with the short count, as a
	// full filesystem or interrupted syscall does.
	ShortWriteProb float64 `json:"short_write_prob,omitempty"`
	// SyncErrProb is the per-Sync probability that the fsync fails
	// without persisting anything new.
	SyncErrProb float64 `json:"sync_err_prob,omitempty"`
	// CorruptProb is the per-Write probability that one byte of the
	// buffer is flipped before it reaches the file — silent media
	// corruption that only a checksum can catch.
	CorruptProb float64 `json:"corrupt_prob,omitempty"`
}

// Zero reports whether the plan injects nothing.
func (p FilePlan) Zero() bool { return p == FilePlan{} }

// Validate reports the first problem with the plan.
func (p FilePlan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"torn_write_prob", p.TornWriteProb},
		{"short_write_prob", p.ShortWriteProb},
		{"sync_err_prob", p.SyncErrProb},
		{"corrupt_prob", p.CorruptProb},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s %v outside [0, 1]", pr.name, pr.v)
		}
	}
	return nil
}

// ParseFilePlan decodes a file plan from JSON, rejecting unknown fields
// so a typo cannot silently disable a fault.
func ParseFilePlan(data []byte) (FilePlan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p FilePlan
	if err := dec.Decode(&p); err != nil {
		return FilePlan{}, fmt.Errorf("fault: parse file plan: %w", err)
	}
	return p, p.Validate()
}

// FileError is the error injected for torn writes and fsync failures,
// distinguishable from real I/O errors in tests and logs.
type FileError struct {
	Op   string // "write" or "sync"
	Name string // file name as passed to WrapFile
}

func (e *FileError) Error() string {
	return fmt.Sprintf("fault: injected %s error on %s", e.Op, e.Name)
}

// WrapFile wraps f so its writes and syncs draw faults from the stream
// "fault/file/<name>" of seed. A zero plan returns f unchanged —
// pointer-identical, nothing interposed. The draw order per operation
// is fixed (Write: torn, short, corrupt, then cut/flip positions as
// needed; Sync: error), so fault sequences do not depend on outcome of
// earlier draws beyond the documented schedule.
func WrapFile(seed int64, plan FilePlan, name string, f FileOps) FileOps {
	if plan.Zero() {
		return f
	}
	return &faultFile{
		f:    f,
		plan: plan,
		name: name,
		st:   stats.NewSource(seed).Stream("fault/file/" + name),
	}
}

type faultFile struct {
	f    FileOps
	plan FilePlan
	name string
	st   *stats.Stream
}

func (ff *faultFile) Write(p []byte) (int, error) {
	torn := ff.st.Float64() < ff.plan.TornWriteProb
	short := ff.st.Float64() < ff.plan.ShortWriteProb
	corrupt := ff.st.Float64() < ff.plan.CorruptProb
	switch {
	case torn && len(p) > 0:
		cut := ff.st.Intn(len(p))
		n, err := ff.f.Write(p[:cut])
		if err != nil {
			return n, err
		}
		return n, &FileError{Op: "write", Name: ff.name}
	case short && len(p) > 1:
		cut := 1 + ff.st.Intn(len(p)-1)
		return ff.f.Write(p[:cut])
	case corrupt && len(p) > 0:
		i := ff.st.Intn(len(p))
		q := append([]byte(nil), p...)
		q[i] ^= 0xff
		return ff.f.Write(q)
	default:
		return ff.f.Write(p)
	}
}

func (ff *faultFile) Sync() error {
	if ff.st.Float64() < ff.plan.SyncErrProb {
		return &FileError{Op: "sync", Name: ff.name}
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
