package fault

import (
	"strings"
	"testing"
	"time"
)

const ms = time.Millisecond

func TestZeroPlan(t *testing.T) {
	if !(Plan{}).Zero() {
		t.Fatal("zero value not Zero")
	}
	nonZero := []Plan{
		{DiskSlowProb: 0.1},
		{DiskErrorProb: 0.1},
		{Brownouts: []Window{{Start: 0, End: ms}}},
		{CPUJitterProb: 0.1},
		{AbortProb: 0.1},
		{Bursts: []Burst{{Window: Window{Start: 0, End: ms}, RateFactor: 2}}},
	}
	for i, p := range nonZero {
		if p.Zero() {
			t.Errorf("plan %d reported Zero", i)
		}
	}
	// Parameters without an enabling probability still count as zero:
	// nothing is ever drawn.
	if !(Plan{DiskSlowFactor: 4, RetryLimit: 5, RetryBackoff: ms, BrownoutFactor: 2, CPUJitterFactor: 3}).Zero() {
		t.Fatal("parameter-only plan should be Zero")
	}
}

func TestValidate(t *testing.T) {
	bad := []Plan{
		{DiskSlowProb: -0.1},
		{DiskSlowProb: 1.1},
		{DiskErrorProb: 2},
		{CPUJitterProb: -1},
		{AbortProb: 7},
		{DiskSlowProb: 0.1, DiskSlowFactor: 0.5},
		{Brownouts: []Window{{Start: 0, End: ms}}, BrownoutFactor: 0.9},
		{CPUJitterProb: 0.1, CPUJitterFactor: 0.5},
		{DiskErrorProb: 0.1, RetryLimit: -1},
		{DiskErrorProb: 0.1, RetryBackoff: -ms},
		{Brownouts: []Window{{Start: -ms, End: ms}}},
		{Brownouts: []Window{{Start: ms, End: ms}}},
		{Bursts: []Burst{{Window: Window{Start: 2 * ms, End: ms}, RateFactor: 2}}},
		{Bursts: []Burst{{Window: Window{Start: 0, End: ms}, RateFactor: 0}}},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("plan %d passed validation: %+v", i, p)
		}
	}
	good := Plan{
		DiskSlowProb: 0.5, DiskSlowFactor: 4,
		DiskErrorProb: 0.2, RetryLimit: 2, RetryBackoff: ms,
		Brownouts: []Window{{Start: 0, End: 100 * ms}}, BrownoutFactor: 8,
		CPUJitterProb: 0.3, CPUJitterFactor: 2,
		AbortProb: 0.01,
		Bursts:    []Burst{{Window: Window{Start: 0, End: time.Second}, RateFactor: 3}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan([]byte(`{"disk_error_prob":0.25,"retry_limit":2,"retry_backoff_ns":1000000}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.DiskErrorProb != 0.25 || p.RetryLimit != 2 || p.RetryBackoff != ms {
		t.Fatalf("parsed plan wrong: %+v", p)
	}
	if _, err := ParsePlan([]byte(`{"disk_eror_prob":0.25}`)); err == nil ||
		!strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("typo field not rejected: %v", err)
	}
	if _, err := ParsePlan([]byte(`{"abort_prob":2}`)); err == nil {
		t.Fatal("invalid plan not rejected by ParsePlan")
	}
}

func TestWindowHalfOpen(t *testing.T) {
	w := Window{Start: 10 * ms, End: 20 * ms}
	if w.Contains(9 * ms) {
		t.Fatal("before start contained")
	}
	if !w.Contains(10 * ms) {
		t.Fatal("start not contained")
	}
	if !w.Contains(19 * ms) {
		t.Fatal("interior not contained")
	}
	if w.Contains(20 * ms) {
		t.Fatal("end contained (window must be half-open)")
	}
}

// TestInjectorDeterminism: same seed and plan means the same draw sequence.
func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{
		DiskSlowProb: 0.3, DiskErrorProb: 0.2, CPUJitterProb: 0.4, AbortProb: 0.1,
		Brownouts: []Window{{Start: 5 * ms, End: 15 * ms}},
	}
	type draws struct {
		svc   []time.Duration
		errs  []bool
		cmp   []time.Duration
		abort []bool
	}
	sample := func(seed int64) draws {
		in := NewInjector(seed, plan)
		var d draws
		for i := 0; i < 200; i++ {
			now := time.Duration(i) * ms / 10
			d.svc = append(d.svc, in.ServiceTime(now, 25*ms))
			d.errs = append(d.errs, in.TransientError())
			d.cmp = append(d.cmp, in.ComputeTime(10*ms))
			d.abort = append(d.abort, in.SpuriousAbort())
		}
		return d
	}
	a, b := sample(42), sample(42)
	for i := range a.svc {
		if a.svc[i] != b.svc[i] || a.errs[i] != b.errs[i] || a.cmp[i] != b.cmp[i] || a.abort[i] != b.abort[i] {
			t.Fatalf("draw %d differs across identical (seed, plan)", i)
		}
	}
	c := sample(43)
	same := true
	for i := range a.svc {
		if a.svc[i] != c.svc[i] || a.errs[i] != c.errs[i] || a.cmp[i] != c.cmp[i] || a.abort[i] != c.abort[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draw sequences")
	}
}

// TestZeroProbabilitiesNeverDraw: prob-gated hooks of a zero plan must not
// consume a single variate, so streams stay aligned whatever faults are off.
func TestZeroProbabilitiesNeverDraw(t *testing.T) {
	in := NewInjector(7, Plan{})
	for i := 0; i < 50; i++ {
		if got := in.ServiceTime(time.Duration(i)*ms, 25*ms); got != 25*ms {
			t.Fatalf("zero plan changed service time: %v", got)
		}
		if in.TransientError() {
			t.Fatal("zero plan produced a transient error")
		}
		if got := in.ComputeTime(10 * ms); got != 10*ms {
			t.Fatalf("zero plan changed compute time: %v", got)
		}
		if in.SpuriousAbort() {
			t.Fatal("zero plan produced a spurious abort")
		}
	}
}

func TestServiceTimeFaults(t *testing.T) {
	// Certain latency spike: every access quadruples (default factor).
	in := NewInjector(1, Plan{DiskSlowProb: 1})
	if got := in.ServiceTime(0, 25*ms); got != 100*ms {
		t.Fatalf("slow access = %v, want 100ms", got)
	}
	// Brownout outside the spike: only accesses starting inside the
	// window are inflated.
	in = NewInjector(1, Plan{Brownouts: []Window{{Start: 10 * ms, End: 20 * ms}}, BrownoutFactor: 2})
	if got := in.ServiceTime(5*ms, 25*ms); got != 25*ms {
		t.Fatalf("outside brownout = %v, want 25ms", got)
	}
	if got := in.ServiceTime(10*ms, 25*ms); got != 50*ms {
		t.Fatalf("inside brownout = %v, want 50ms", got)
	}
	// Spike and brownout compose multiplicatively.
	in = NewInjector(1, Plan{DiskSlowProb: 1, DiskSlowFactor: 2, Brownouts: []Window{{Start: 0, End: ms}}, BrownoutFactor: 3})
	if got := in.ServiceTime(0, 10*ms); got != 60*ms {
		t.Fatalf("composed inflation = %v, want 60ms", got)
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	limit, backoff := NewInjector(1, Plan{DiskErrorProb: 0.5}).RetryPolicy()
	if limit != 3 || backoff != ms {
		t.Fatalf("defaults = (%d, %v), want (3, 1ms)", limit, backoff)
	}
	limit, backoff = NewInjector(1, Plan{DiskErrorProb: 0.5, RetryLimit: 7, RetryBackoff: 4 * ms}).RetryPolicy()
	if limit != 7 || backoff != 4*ms {
		t.Fatalf("explicit = (%d, %v), want (7, 4ms)", limit, backoff)
	}
}

func TestComputeTimeJitterBounds(t *testing.T) {
	in := NewInjector(3, Plan{CPUJitterProb: 1, CPUJitterFactor: 2})
	for i := 0; i < 100; i++ {
		got := in.ComputeTime(10 * ms)
		if got < 10*ms || got > 20*ms {
			t.Fatalf("jittered compute %v outside [10ms, 20ms]", got)
		}
	}
}
