package fault

import (
	"errors"
	"fmt"
	"testing"
)

// recFile records operations so tests can observe what reached the
// "disk" through the injector.
type recFile struct {
	data   []byte
	syncs  int
	closes int
}

func (r *recFile) Write(p []byte) (int, error) {
	r.data = append(r.data, p...)
	return len(p), nil
}
func (r *recFile) Sync() error  { r.syncs++; return nil }
func (r *recFile) Close() error { r.closes++; return nil }

func TestFilePlanZeroIsIdentity(t *testing.T) {
	f := &recFile{}
	got := WrapFile(42, FilePlan{}, "wal-0.log", f)
	if got != FileOps(f) {
		t.Fatalf("zero plan wrapped the file: %T", got)
	}
}

func TestFilePlanValidate(t *testing.T) {
	if err := (FilePlan{TornWriteProb: 1.5}).Validate(); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if err := (FilePlan{SyncErrProb: -0.1}).Validate(); err == nil {
		t.Fatal("negative probability accepted")
	}
	if _, err := ParseFilePlan([]byte(`{"torn_write_prob":0.5,"typo":1}`)); err == nil {
		t.Fatal("unknown JSON field accepted")
	}
	p, err := ParseFilePlan([]byte(`{"torn_write_prob":0.25,"sync_err_prob":0.5}`))
	if err != nil || p.TornWriteProb != 0.25 || p.SyncErrProb != 0.5 {
		t.Fatalf("parse: %+v, %v", p, err)
	}
}

// faultTrace drives a fixed operation sequence through an injector and
// returns a compact transcript of what happened.
func faultTrace(seed int64, plan FilePlan, name string) string {
	f := &recFile{}
	w := WrapFile(seed, plan, name, f)
	out := ""
	for i := 0; i < 64; i++ {
		p := make([]byte, 32)
		for j := range p {
			p[j] = byte(i)
		}
		n, err := w.Write(p)
		out += fmt.Sprintf("w%d:%d,%v;", i, n, err != nil)
		if i%4 == 3 {
			out += fmt.Sprintf("s%d:%v;", i, w.Sync() != nil)
		}
	}
	out += fmt.Sprintf("disk:%x", f.data)
	return out
}

func TestFileFaultsDeterministic(t *testing.T) {
	plan := FilePlan{TornWriteProb: 0.2, ShortWriteProb: 0.2, SyncErrProb: 0.3, CorruptProb: 0.2}
	a := faultTrace(7, plan, "wal-a.log")
	b := faultTrace(7, plan, "wal-a.log")
	if a != b {
		t.Fatal("same seed+name produced different fault sequences")
	}
	if c := faultTrace(8, plan, "wal-a.log"); c == a {
		t.Fatal("different seed produced identical fault sequence")
	}
	if d := faultTrace(7, plan, "wal-b.log"); d == a {
		t.Fatal("different file name produced identical fault sequence")
	}
}

func TestFileFaultShapes(t *testing.T) {
	// With probability 1 each shape must actually fire.
	f := &recFile{}
	w := WrapFile(1, FilePlan{TornWriteProb: 1}, "t", f)
	n, err := w.Write(make([]byte, 100))
	var fe *FileError
	if !errors.As(err, &fe) || fe.Op != "write" || n != len(f.data) || n >= 100 {
		t.Fatalf("torn write: n=%d err=%v disk=%d", n, err, len(f.data))
	}

	f = &recFile{}
	w = WrapFile(1, FilePlan{ShortWriteProb: 1}, "t", f)
	n, err = w.Write(make([]byte, 100))
	if err != nil || n >= 100 || n < 1 || n != len(f.data) {
		t.Fatalf("short write: n=%d err=%v disk=%d", n, err, len(f.data))
	}

	f = &recFile{}
	w = WrapFile(1, FilePlan{CorruptProb: 1}, "t", f)
	orig := make([]byte, 100)
	if n, err = w.Write(orig); err != nil || n != 100 || len(f.data) != 100 {
		t.Fatalf("corrupt write: n=%d err=%v disk=%d", n, err, len(f.data))
	}
	flipped := 0
	for _, b := range f.data {
		if b != 0 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("corrupt write flipped %d bytes, want 1", flipped)
	}
	for _, b := range orig {
		if b != 0 {
			t.Fatal("corrupt write mutated the caller's buffer")
		}
	}

	f = &recFile{}
	w = WrapFile(1, FilePlan{SyncErrProb: 1}, "t", f)
	if err := w.Sync(); !errors.As(err, &fe) || fe.Op != "sync" || f.syncs != 0 {
		t.Fatalf("sync error: %v (syncs=%d)", err, f.syncs)
	}
	if err := w.Close(); err != nil || f.closes != 1 {
		t.Fatalf("close passthrough: %v (closes=%d)", err, f.closes)
	}
}
