// Package fault defines deterministic fault injection for the simulator:
// a declarative Plan of disk faults (latency multipliers, transient errors,
// brownout windows), CPU service-time jitter, spurious transaction aborts
// and arrival bursts, plus the seeded Injector that draws every fault
// decision from named random substreams of the run seed.
//
// Determinism is the whole point. Every draw happens at a well-defined
// simulation event (disk service start, disk completion, compute-slice
// start, update completion), and the simulation kernel is single-threaded
// with FIFO same-instant ordering, so the same (seed, Plan) pair always
// produces the same fault sequence — faulted runs are bit-reproducible.
// The fault streams are independent of the workload-generation streams
// (stats.Source names them apart), so enabling a fault never perturbs the
// generated workload, and the zero Plan injects nothing at all: engines
// skip the injector entirely and every existing run stays bit-identical.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/stats"
)

// Window is a half-open interval [Start, End) of simulated time.
type Window struct {
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Duration) bool { return t >= w.Start && t < w.End }

// Burst is an arrival-storm window: while an arrival falls inside the
// window, the workload generator divides the mean inter-arrival time by
// RateFactor (so RateFactor 4 quadruples the arrival rate).
type Burst struct {
	Window
	RateFactor float64 `json:"rate_factor"`
}

// Plan declares the faults to inject into one run. The zero value injects
// nothing and is guaranteed to leave every run bit-identical to an
// unfaulted one. Durations encode as integer nanoseconds in JSON, matching
// the repository's metrics codec.
type Plan struct {
	// DiskSlowProb is the per-access probability that the access takes
	// DiskSlowFactor times its nominal service time (a latency spike).
	DiskSlowProb float64 `json:"disk_slow_prob,omitempty"`
	// DiskSlowFactor is the latency-spike multiplier (default 4).
	DiskSlowFactor float64 `json:"disk_slow_factor,omitempty"`

	// DiskErrorProb is the per-completion probability that the access
	// fails transiently. The disk retries with exponential backoff up to
	// RetryLimit times; a request that exhausts its retries completes
	// failed, and the engine aborts (restarts) its transaction.
	DiskErrorProb float64 `json:"disk_error_prob,omitempty"`
	// RetryLimit bounds the per-request retries (default 3).
	RetryLimit int `json:"retry_limit,omitempty"`
	// RetryBackoff is the first retry delay; attempt n waits
	// RetryBackoff << (n-1) (default 1ms).
	RetryBackoff time.Duration `json:"retry_backoff_ns,omitempty"`

	// Brownouts are whole-disk slowdown windows: every access that starts
	// service inside a window takes BrownoutFactor times its nominal time.
	Brownouts []Window `json:"brownouts,omitempty"`
	// BrownoutFactor is the brownout multiplier (default 8).
	BrownoutFactor float64 `json:"brownout_factor,omitempty"`

	// CPUJitterProb is the per-compute-slice probability that the slice's
	// service time is inflated by a uniform factor in [1, CPUJitterFactor].
	CPUJitterProb float64 `json:"cpu_jitter_prob,omitempty"`
	// CPUJitterFactor is the jitter upper bound (default 2).
	CPUJitterFactor float64 `json:"cpu_jitter_factor,omitempty"`

	// AbortProb is the per-completed-update probability that the
	// transaction spuriously aborts (and restarts), modelling software
	// faults in the transaction manager.
	AbortProb float64 `json:"abort_prob,omitempty"`

	// Bursts are arrival-storm windows applied by the workload generator.
	Bursts []Burst `json:"bursts,omitempty"`
}

// Zero reports whether the plan injects nothing. A zero plan never builds
// an injector, never draws a variate, and leaves runs bit-identical.
func (p Plan) Zero() bool {
	return p.DiskSlowProb == 0 && p.DiskErrorProb == 0 && len(p.Brownouts) == 0 &&
		p.CPUJitterProb == 0 && p.AbortProb == 0 && len(p.Bursts) == 0
}

// Validate reports the first problem with the plan.
func (p Plan) Validate() error {
	for name, prob := range map[string]float64{
		"DiskSlowProb":  p.DiskSlowProb,
		"DiskErrorProb": p.DiskErrorProb,
		"CPUJitterProb": p.CPUJitterProb,
		"AbortProb":     p.AbortProb,
	} {
		if prob < 0 || prob > 1 {
			return fmt.Errorf("fault: %s %v outside [0,1]", name, prob)
		}
	}
	if p.DiskSlowFactor != 0 && p.DiskSlowFactor < 1 {
		return fmt.Errorf("fault: DiskSlowFactor %v < 1", p.DiskSlowFactor)
	}
	if p.BrownoutFactor != 0 && p.BrownoutFactor < 1 {
		return fmt.Errorf("fault: BrownoutFactor %v < 1", p.BrownoutFactor)
	}
	if p.CPUJitterFactor != 0 && p.CPUJitterFactor < 1 {
		return fmt.Errorf("fault: CPUJitterFactor %v < 1", p.CPUJitterFactor)
	}
	if p.RetryLimit < 0 {
		return fmt.Errorf("fault: RetryLimit %d < 0", p.RetryLimit)
	}
	if p.RetryBackoff < 0 {
		return fmt.Errorf("fault: RetryBackoff %v < 0", p.RetryBackoff)
	}
	for i, w := range p.Brownouts {
		if w.Start < 0 || w.End <= w.Start {
			return fmt.Errorf("fault: brownout %d window [%v, %v) invalid", i, w.Start, w.End)
		}
	}
	for i, b := range p.Bursts {
		if b.Start < 0 || b.End <= b.Start {
			return fmt.Errorf("fault: burst %d window [%v, %v) invalid", i, b.Start, b.End)
		}
		if b.RateFactor <= 0 {
			return fmt.Errorf("fault: burst %d rate factor %v <= 0", i, b.RateFactor)
		}
	}
	return nil
}

// Defaulted parameter accessors.

func (p Plan) slowFactor() float64 {
	if p.DiskSlowFactor > 0 {
		return p.DiskSlowFactor
	}
	return 4
}

func (p Plan) brownoutFactor() float64 {
	if p.BrownoutFactor > 0 {
		return p.BrownoutFactor
	}
	return 8
}

func (p Plan) jitterFactor() float64 {
	if p.CPUJitterFactor > 0 {
		return p.CPUJitterFactor
	}
	return 2
}

func (p Plan) retryLimit() int {
	if p.RetryLimit > 0 {
		return p.RetryLimit
	}
	return 3
}

func (p Plan) retryBackoff() time.Duration {
	if p.RetryBackoff > 0 {
		return p.RetryBackoff
	}
	return time.Millisecond
}

// ParsePlan decodes a plan from JSON (unknown fields rejected, so a typo
// cannot silently disable a fault) and validates it.
func ParsePlan(data []byte) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("fault: parsing plan: %w", err)
	}
	return p, p.Validate()
}

// Injector draws every fault decision of one run from named substreams of
// the run seed. The streams are independent of each other and of every
// workload stream, so adding a fault class never perturbs the others.
// An Injector is not safe for concurrent use; the simulation kernel is
// single-threaded, which is what makes the draw order deterministic.
type Injector struct {
	plan    Plan
	diskLat *stats.Stream
	diskErr *stats.Stream
	cpu     *stats.Stream
	abort   *stats.Stream
}

// NewInjector builds the injector for one run. Callers should skip
// construction entirely for a zero plan (engines do); a zero-plan injector
// is still harmless — every probability gate fails without drawing.
func NewInjector(seed int64, p Plan) *Injector {
	src := stats.NewSource(seed)
	return &Injector{
		plan:    p,
		diskLat: src.Stream("fault-disk-latency"),
		diskErr: src.Stream("fault-disk-error"),
		cpu:     src.Stream("fault-cpu"),
		abort:   src.Stream("fault-abort"),
	}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// ServiceTime returns the possibly-inflated service time of one disk
// access starting at the given simulated instant. It implements the disk
// package's Faults hook.
func (in *Injector) ServiceTime(now, base time.Duration) time.Duration {
	t := base
	if in.plan.DiskSlowProb > 0 && in.diskLat.Bernoulli(in.plan.DiskSlowProb) {
		t = time.Duration(float64(t) * in.plan.slowFactor())
	}
	for _, w := range in.plan.Brownouts {
		if w.Contains(now) {
			t = time.Duration(float64(t) * in.plan.brownoutFactor())
			break
		}
	}
	return t
}

// TransientError reports whether a completed disk access fails and must be
// retried (disk Faults hook).
func (in *Injector) TransientError() bool {
	return in.plan.DiskErrorProb > 0 && in.diskErr.Bernoulli(in.plan.DiskErrorProb)
}

// RetryPolicy returns the bounded-retry parameters (disk Faults hook).
func (in *Injector) RetryPolicy() (limit int, backoff time.Duration) {
	return in.plan.retryLimit(), in.plan.retryBackoff()
}

// ComputeTime returns the possibly-jittered service time of one compute
// slice.
func (in *Injector) ComputeTime(base time.Duration) time.Duration {
	if in.plan.CPUJitterProb > 0 && in.cpu.Bernoulli(in.plan.CPUJitterProb) {
		return time.Duration(float64(base) * in.cpu.Uniform(1, in.plan.jitterFactor()))
	}
	return base
}

// SpuriousAbort reports whether the update that just completed triggers a
// spurious transaction abort.
func (in *Injector) SpuriousAbort() bool {
	return in.plan.AbortProb > 0 && in.abort.Bernoulli(in.plan.AbortProb)
}
