package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/txn"
)

func TestJSONRoundTrip(t *testing.T) {
	p := BaseDisk()
	p.Count = 40
	p.ReadFraction = 0.3
	p.CriticalityLevels = 2
	w := MustGenerate(p, 9)

	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Txns) != len(w.Txns) || len(got.Types) != len(w.Types) {
		t.Fatal("lengths differ after round trip")
	}
	for i := range w.Txns {
		a, b := w.Txns[i], got.Txns[i]
		if a.Arrival != b.Arrival || a.Deadline != b.Deadline || a.Type != b.Type ||
			a.Compute != b.Compute || a.Criticality != b.Criticality {
			t.Fatalf("txn %d scalar fields differ", i)
		}
		for j := range a.Items {
			if a.Items[j] != b.Items[j] {
				t.Fatalf("txn %d item %d differs", i, j)
			}
		}
		for j := range a.NeedsIO {
			if a.NeedsIO[j] != b.NeedsIO[j] || a.Reads[j] != b.Reads[j] {
				t.Fatalf("txn %d flags differ", i)
			}
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"params":{},"txns":[]}`)); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func brokenWorkload(mutate func(*Workload)) *Workload {
	p := BaseMainMemory()
	p.Count = 3
	w := MustGenerate(p, 1)
	mutate(w)
	return w
}

func TestCheckCatchesCorruption(t *testing.T) {
	cases := map[string]func(*Workload){
		"bad id":            func(w *Workload) { w.Txns[1].ID = 7 },
		"no items":          func(w *Workload) { w.Txns[0].Items = nil },
		"zero compute":      func(w *Workload) { w.Txns[0].Compute = 0 },
		"item out of range": func(w *Workload) { w.Txns[0].Items = []txn.Item{99} },
		"unsorted arrivals": func(w *Workload) { w.Txns[2].Arrival = 0; w.Txns[1].Arrival = time.Hour },
		"deadline<=arrival": func(w *Workload) { w.Txns[0].Deadline = w.Txns[0].Arrival },
		"zero dbsize":       func(w *Workload) { w.Params.DBSize = 0 },
		"needsio mismatch":  func(w *Workload) { w.Txns[0].NeedsIO = []bool{true} },
	}
	for name, mutate := range cases {
		w := brokenWorkload(mutate)
		if err := w.Check(); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func TestDescribe(t *testing.T) {
	p := BaseDisk()
	p.Count = 50
	w := MustGenerate(p, 3)
	d := w.Describe()
	for _, want := range []string{"transactions: 50", "types: 50", "db: 30", "disk accesses"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}
