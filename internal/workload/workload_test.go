package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/stats"
	"repro/internal/txn"
)

func TestBaseMainMemoryMatchesTable1(t *testing.T) {
	p := BaseMainMemory()
	if p.TxnTypes != 50 || p.UpdatesMean != 20 || p.UpdatesStd != 10 {
		t.Fatal("type parameters do not match Table 1")
	}
	if p.DBSize != 30 {
		t.Fatalf("DBSize = %d, want 30", p.DBSize)
	}
	if p.ComputePerUpdate != 4*time.Millisecond {
		t.Fatal("compute/update does not match Table 1")
	}
	if p.MinSlack != 0.2 || p.MaxSlack != 8.0 {
		t.Fatal("slack bounds do not match Table 1")
	}
	if p.Count != 1000 {
		t.Fatal("Count should be 1000 per §4")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBaseDiskMatchesTable2(t *testing.T) {
	p := BaseDisk()
	if p.DiskAccessProb != 0.1 || p.DiskAccessTime != 25*time.Millisecond {
		t.Fatal("disk parameters do not match Table 2")
	}
	if p.Count != 300 {
		t.Fatal("Count should be 300 per §5")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCapacityMainMemory checks the §4.1 capacity computation:
// 4 ms/update × 20 updates = 80 ms/txn  =>  12.5 tr/s.
func TestCapacityMainMemory(t *testing.T) {
	got := BaseMainMemory().CPUCapacity()
	if math.Abs(got-12.5) > 1e-9 {
		t.Fatalf("CPUCapacity = %v, want 12.5", got)
	}
}

// TestCapacityHighVariance checks §4.2: (0.4+4+40)/3 ms × 20 = 296 ms/txn
// => ≈3.378 tr/s (the paper rounds to 3.37).
func TestCapacityHighVariance(t *testing.T) {
	got := HighVariance().CPUCapacity()
	want := 1000.0 / 296.0
	if math.Abs(got-want) > 1e-5 {
		t.Fatalf("CPUCapacity = %v, want %v", got, want)
	}
}

// TestDiskUtilization checks §5: at 12.5 tr/s, 20 updates × 1/10 × 25 ms
// gives 62.5% utilisation.
func TestDiskUtilization(t *testing.T) {
	got := BaseDisk().DiskUtilizationAt(12.5)
	if math.Abs(got-0.625) > 1e-9 {
		t.Fatalf("DiskUtilizationAt(12.5) = %v, want 0.625", got)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.TxnTypes = 0 },
		func(p *Params) { p.DBSize = 0 },
		func(p *Params) { p.UpdatesMean = 0 },
		func(p *Params) { p.UpdatesStd = -1 },
		func(p *Params) { p.ComputePerUpdate = 0 },
		func(p *Params) { p.MinSlack = -0.1 },
		func(p *Params) { p.MaxSlack = p.MinSlack - 1 },
		func(p *Params) { p.ArrivalRate = 0 },
		func(p *Params) { p.Count = 0 },
		func(p *Params) { p.DiskAccessProb = 1.5 },
		func(p *Params) { p.DiskAccessProb = 0.1; p.DiskAccessTime = 0 },
		func(p *Params) { p.ReadFraction = -0.5 },
		func(p *Params) { p.Classes = []Class{{Fraction: 0.5, ComputePerUpdate: time.Millisecond}} },
		func(p *Params) { p.Classes = []Class{{Fraction: 1, ComputePerUpdate: 0}} },
	}
	for i, mutate := range cases {
		p := BaseMainMemory()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestGenerateReproducible(t *testing.T) {
	p := BaseMainMemory()
	p.Count = 50
	a := MustGenerate(p, 42)
	b := MustGenerate(p, 42)
	for i := range a.Txns {
		x, y := a.Txns[i], b.Txns[i]
		if x.Arrival != y.Arrival || x.Deadline != y.Deadline || x.Type != y.Type {
			t.Fatalf("txn %d differs across identical generations", i)
		}
	}
	c := MustGenerate(p, 43)
	if a.Txns[0].Arrival == c.Txns[0].Arrival && a.Txns[1].Arrival == c.Txns[1].Arrival {
		t.Fatal("different seeds produced identical arrivals")
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	p := BaseMainMemory()
	p.Count = 0
	if _, err := Generate(p, 1); err == nil {
		t.Fatal("Generate accepted invalid params")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate did not panic")
		}
	}()
	MustGenerate(Params{}, 1)
}

func TestTypesWellFormed(t *testing.T) {
	p := BaseMainMemory()
	p.Count = 10
	w := MustGenerate(p, 7)
	if len(w.Types) != 50 {
		t.Fatalf("types = %d, want 50", len(w.Types))
	}
	for _, ty := range w.Types {
		if len(ty.Items) < 1 || len(ty.Items) > p.DBSize {
			t.Fatalf("type %d has %d items", ty.ID, len(ty.Items))
		}
		seen := map[int]bool{}
		for _, it := range ty.Items {
			if int(it) < 0 || int(it) >= p.DBSize {
				t.Fatalf("type %d item %d out of range", ty.ID, it)
			}
			if seen[int(it)] {
				t.Fatalf("type %d has duplicate item %d", ty.ID, it)
			}
			seen[int(it)] = true
		}
		if ty.Compute != p.ComputePerUpdate {
			t.Fatalf("type %d compute = %v", ty.ID, ty.Compute)
		}
	}
}

func TestInstancesShareTypeItems(t *testing.T) {
	p := BaseMainMemory()
	p.Count = 200
	w := MustGenerate(p, 11)
	for _, s := range w.Txns {
		ty := w.Types[s.Type]
		if len(s.Items) != len(ty.Items) {
			t.Fatal("instance items differ from type items")
		}
		for i := range s.Items {
			if s.Items[i] != ty.Items[i] {
				t.Fatal("instance items differ from type items")
			}
		}
	}
}

func TestArrivalsIncreasingAndPoissonish(t *testing.T) {
	p := BaseMainMemory()
	p.ArrivalRate = 10
	p.Count = 5000
	w := MustGenerate(p, 13)
	var prev time.Duration = -1
	var acc stats.Accumulator
	last := time.Duration(0)
	for _, s := range w.Txns {
		if s.Arrival <= prev {
			t.Fatal("arrivals not strictly increasing")
		}
		acc.Add(float64(s.Arrival-last) / float64(time.Second))
		last = s.Arrival
		prev = s.Arrival
	}
	if math.Abs(acc.Mean()-0.1) > 0.01 {
		t.Fatalf("mean inter-arrival = %v s, want ~0.1", acc.Mean())
	}
}

func TestDeadlineFormula(t *testing.T) {
	p := BaseMainMemory()
	p.Count = 500
	w := MustGenerate(p, 17)
	for _, s := range w.Txns {
		res := s.ResourceTime(p.DiskAccessTime)
		minDL := s.Arrival + time.Duration(float64(res)*1.2)
		maxDL := s.Arrival + time.Duration(float64(res)*9.0)
		if s.Deadline < minDL-time.Nanosecond || s.Deadline > maxDL+time.Nanosecond {
			t.Fatalf("txn %d deadline %v outside [%v, %v]", s.ID, s.Deadline, minDL, maxDL)
		}
	}
}

func TestDiskWorkloadHasIOFlags(t *testing.T) {
	p := BaseDisk()
	p.Count = 500
	w := MustGenerate(p, 19)
	totalUpdates, ios := 0, 0
	for _, s := range w.Txns {
		if len(s.NeedsIO) != len(s.Items) {
			t.Fatal("NeedsIO length mismatch")
		}
		for _, io := range s.NeedsIO {
			totalUpdates++
			if io {
				ios++
			}
		}
	}
	frac := float64(ios) / float64(totalUpdates)
	if math.Abs(frac-0.1) > 0.02 {
		t.Fatalf("IO fraction = %v, want ~0.1", frac)
	}
	// Resource time must include the drawn IO time.
	s := w.Txns[0]
	var wantIO time.Duration
	for _, io := range s.NeedsIO {
		if io {
			wantIO += p.DiskAccessTime
		}
	}
	want := time.Duration(len(s.Items))*s.Compute + wantIO
	if got := s.ResourceTime(p.DiskAccessTime); got != want {
		t.Fatalf("ResourceTime = %v, want %v", got, want)
	}
}

func TestMainMemoryWorkloadHasNoIO(t *testing.T) {
	p := BaseMainMemory()
	p.Count = 20
	w := MustGenerate(p, 23)
	for _, s := range w.Txns {
		if len(s.NeedsIO) != 0 {
			t.Fatal("main-memory workload should have no IO flags")
		}
	}
}

func TestHighVarianceClasses(t *testing.T) {
	p := HighVariance()
	p.Count = 10
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	w := MustGenerate(p, 29)
	counts := map[time.Duration]int{}
	for _, ty := range w.Types {
		counts[ty.Compute]++
	}
	for _, want := range []time.Duration{400 * time.Microsecond, 4 * time.Millisecond, 40 * time.Millisecond} {
		// 50 types over 3 equal classes: 16 or 17 each.
		if c := counts[want]; c < 16 || c > 17 {
			t.Fatalf("class %v has %d types, want 16-17", want, c)
		}
	}
}

func TestReadFractionExtension(t *testing.T) {
	p := BaseMainMemory()
	p.ReadFraction = 0.5
	p.Count = 300
	w := MustGenerate(p, 31)
	reads, total := 0, 0
	for _, s := range w.Txns {
		if len(s.Reads) != len(s.Items) {
			t.Fatal("Reads length mismatch")
		}
		for _, r := range s.Reads {
			total++
			if r {
				reads++
			}
		}
	}
	frac := float64(reads) / float64(total)
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("read fraction = %v, want ~0.5", frac)
	}
}

func TestCriticalityExtension(t *testing.T) {
	p := BaseMainMemory()
	p.CriticalityLevels = 3
	p.Count = 300
	w := MustGenerate(p, 37)
	seen := map[int]int{}
	for _, s := range w.Txns {
		if s.Criticality < 0 || s.Criticality >= 3 {
			t.Fatalf("criticality %d out of range", s.Criticality)
		}
		seen[s.Criticality]++
	}
	for lvl := 0; lvl < 3; lvl++ {
		if seen[lvl] < 50 {
			t.Fatalf("criticality level %d underrepresented: %d", lvl, seen[lvl])
		}
	}
}

func TestClassOfCoversAllClasses(t *testing.T) {
	classes := []Class{
		{Fraction: 0.2, ComputePerUpdate: time.Millisecond},
		{Fraction: 0.3, ComputePerUpdate: time.Millisecond},
		{Fraction: 0.5, ComputePerUpdate: time.Millisecond},
	}
	counts := map[int]int{}
	for i := 0; i < 100; i++ {
		counts[classOf(i, 100, classes)]++
	}
	if counts[0] != 20 || counts[1] != 30 || counts[2] != 50 {
		t.Fatalf("class split = %v, want 20/30/50", counts)
	}
}

// Property: any valid-ish parameter draw produces a structurally consistent
// workload (deadline >= arrival + resource, items within range).
func TestQuickWorkloadConsistency(t *testing.T) {
	f := func(seed int64, rateQ, dbQ uint8) bool {
		p := BaseMainMemory()
		p.ArrivalRate = 1 + float64(rateQ%12)
		p.DBSize = 10 + int(dbQ%200)
		p.Count = 40
		w, err := Generate(p, seed)
		if err != nil {
			return false
		}
		for _, s := range w.Txns {
			if s.Deadline < s.Arrival+s.ResourceTime(0) {
				return false
			}
			for _, it := range s.Items {
				if int(it) < 0 || int(it) >= p.DBSize {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeProgramFormalism(t *testing.T) {
	// Flat type: single-leaf program.
	flat := Type{Items: []txn.Item{1, 2}}
	a, err := txn.Analyze(flat.Program("F"))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Leaves("F")) != 1 {
		t.Fatal("flat type program should be a single leaf")
	}
	// Branching type: the Program reproduces the paper's two-leaf tree and
	// the pre-analysis classifies a branch-only accessor as conditionally
	// conflicting before the decision point.
	ty := Type{
		Prefix:  []txn.Item{0},
		BranchA: []txn.Item{1, 2},
		BranchB: []txn.Item{3, 4},
		Items:   []txn.Item{0},
	}
	at, err := txn.Analyze(ty.Program("T"))
	if err != nil {
		t.Fatal(err)
	}
	if len(at.Leaves("T")) != 2 {
		t.Fatal("branching type program should have two leaves")
	}
	other, _ := txn.Analyze(txn.Flat("O", 3))
	got := txn.ConflictBetween(txn.At(at, "T"), txn.NewState(other))
	if got != txn.ConditionallyConflict {
		t.Fatalf("branch-only accessor classified %v, want conditionally-conflict", got)
	}
}

func TestGenerateDecisionPointsResourceTime(t *testing.T) {
	p := BaseMainMemory()
	p.DBSize = 200
	p.Count = 100
	p.DecisionPoints = true
	w := MustGenerate(p, 5)
	for i := range w.Txns {
		s := &w.Txns[i]
		// Deadlines still follow the executed path's resource time.
		res := s.ResourceTime(0)
		if s.Deadline < s.Arrival+time.Duration(float64(res)*1.2)-time.Nanosecond {
			t.Fatalf("txn %d deadline below min slack", i)
		}
	}
}

func TestCheckDecisionFields(t *testing.T) {
	p := BaseMainMemory()
	p.Count = 2
	w := MustGenerate(p, 1)
	w.Txns[0].MightFull = []txn.Item{0}
	w.Txns[0].Items = []txn.Item{1} // executes outside might-set
	if err := w.Check(); err == nil {
		t.Fatal("path outside might-set accepted")
	}
	w2 := MustGenerate(p, 1)
	w2.Txns[0].MightFull = append([]txn.Item(nil), w2.Txns[0].Items...)
	w2.Txns[0].DecisionIndex = len(w2.Txns[0].Items) // out of range
	if err := w2.Check(); err == nil {
		t.Fatal("out-of-range decision index accepted")
	}
}
