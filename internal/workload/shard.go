package workload

// Shard classification of pre-analysed transactions. The router uses the
// *pre-analysis* footprint — everything a transaction might access, not
// just what its executed path touches — so a transaction is classified
// before it runs, exactly as the paper's pre-analysis intends: a
// transaction whose untaken branch would have crossed shards is still a
// cross-shard transaction, because its locks could have landed there.

import (
	"math/bits"

	"repro/internal/txn"
)

// Footprint returns the pre-analysis access footprint used for shard
// classification: the pessimistic might-access set when the spec has a
// decision point, its executed item list otherwise.
func (s *Spec) Footprint() []txn.Item {
	if len(s.MightFull) > 0 {
		return s.MightFull
	}
	return s.Items
}

// HomeShard classifies the spec against an n-way partition: the shard that
// owns its footprint, and whether the footprint spans more than one shard.
// For a cross-shard spec the returned home is the lowest touched shard
// (deterministic, but callers should treat it as arbitrary).
func (s *Spec) HomeShard(n int) (home int, cross bool) {
	if n == 1 {
		return 0, false
	}
	mask := txn.ShardsTouched(s.Footprint(), n)
	if mask == 0 {
		// Empty footprint: a no-op transaction lives on shard 0.
		return 0, false
	}
	return bits.TrailingZeros64(mask), mask&(mask-1) != 0
}

// ShardPart is one shard's slice of a cross-shard transaction.
type ShardPart struct {
	Shard int
	Spec  Spec
}

// SplitShards cuts a cross-shard spec into per-shard sub-specs, in
// ascending shard order. Each part keeps the original update order of its
// shard's items, with the per-update Reads/NeedsIO flags realigned. Parts
// inherit the pre-decision might-access set restricted to their shard and
// carry DecisionIndex -1: the sub-spec pessimistically might-locks its
// whole footprint slice for its lifetime and never narrows, which is safe
// (narrowing only releases locks early) and keeps the split independent of
// where the decision point falls relative to the cut.
//
// Shards whose only presence is in the might-access set (an untaken
// branch) get no part — there is nothing to execute there.
func (s *Spec) SplitShards(n int) []ShardPart {
	parts := make([]ShardPart, 0, 2)
	for shard := 0; shard < n; shard++ {
		var items []txn.Item
		var reads []bool
		var io []bool
		for u, it := range s.Items {
			if txn.ShardOf(it, n) != shard {
				continue
			}
			items = append(items, it)
			if len(s.Reads) > 0 {
				reads = append(reads, s.Reads[u])
			}
			if len(s.NeedsIO) > 0 {
				io = append(io, s.NeedsIO[u])
			}
		}
		if len(items) == 0 {
			continue
		}
		part := Spec{
			ID:          s.ID,
			Type:        s.Type,
			Arrival:     s.Arrival,
			Deadline:    s.Deadline,
			Items:       items,
			Compute:     s.Compute,
			NeedsIO:     io,
			Reads:       reads,
			Criticality: s.Criticality,
			Class:       s.Class,
		}
		if len(s.MightFull) > 0 {
			var might []txn.Item
			for _, it := range s.MightFull {
				if txn.ShardOf(it, n) == shard {
					might = append(might, it)
				}
			}
			part.MightFull = might
			part.DecisionIndex = -1
		}
		parts = append(parts, ShardPart{Shard: shard, Spec: part})
	}
	return parts
}
