package workload

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestGenerateFaultedNilBurstsIdentical: without bursts, GenerateFaulted
// must be bit-identical to Generate — the burst hook draws nothing extra.
func TestGenerateFaultedNilBurstsIdentical(t *testing.T) {
	p := BaseMainMemory()
	p.Count = 200
	plain, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := GenerateFaulted(p, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, faulted) {
		t.Fatal("GenerateFaulted(nil bursts) differs from Generate")
	}
	empty, err := GenerateFaulted(p, 7, []fault.Burst{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, empty) {
		t.Fatal("GenerateFaulted(empty bursts) differs from Generate")
	}
}

// TestBurstCompressesArrivals: arrivals inside a burst window pack tighter,
// while draws outside stay untouched (the burst only scales the drawn IAT,
// so the generator's stream alignment is preserved).
func TestBurstCompressesArrivals(t *testing.T) {
	p := BaseMainMemory()
	p.Count = 500
	p.ArrivalRate = 10
	window := fault.Window{Start: 0, End: 5 * time.Second}
	burst, err := GenerateFaulted(p, 3, []fault.Burst{{Window: window, RateFactor: 4}})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	count := func(wl *Workload) int {
		n := 0
		for _, s := range wl.Txns {
			if window.Contains(s.Arrival) {
				n++
			}
		}
		return n
	}
	nb, np := count(burst), count(plain)
	if nb <= np {
		t.Fatalf("burst window holds %d arrivals, plain %d — burst did not compress", nb, np)
	}
	// Everything but the arrival instants is drawn from independent
	// streams and must be unchanged.
	for i := range plain.Txns {
		if burst.Txns[i].Deadline-burst.Txns[i].Arrival != plain.Txns[i].Deadline-plain.Txns[i].Arrival {
			t.Fatalf("spec %d relative deadline changed under burst", i)
		}
		if !reflect.DeepEqual(burst.Txns[i].Items, plain.Txns[i].Items) {
			t.Fatalf("spec %d item list changed under burst", i)
		}
	}
}

// TestBurstValidation: invalid burst windows are rejected up front.
func TestBurstValidation(t *testing.T) {
	p := BaseMainMemory()
	p.Count = 10
	bad := [][]fault.Burst{
		{{Window: fault.Window{Start: -time.Second, End: time.Second}, RateFactor: 2}},
		{{Window: fault.Window{Start: time.Second, End: time.Second}, RateFactor: 2}},
		{{Window: fault.Window{Start: 0, End: time.Second}, RateFactor: 0}},
	}
	for i, b := range bad {
		if _, err := GenerateFaulted(p, 1, b); err == nil {
			t.Errorf("burst set %d accepted: %+v", i, b)
		}
	}
}

// TestBurstDeterminism: the same (seed, bursts) pair regenerates the same
// workload.
func TestBurstDeterminism(t *testing.T) {
	p := BaseMainMemory()
	p.Count = 100
	bursts := []fault.Burst{{Window: fault.Window{Start: time.Second, End: 3 * time.Second}, RateFactor: 3}}
	a, err := GenerateFaulted(p, 11, bursts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFaulted(p, 11, bursts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical (seed, bursts) produced different workloads")
	}
}
