package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/txn"
)

// jsonWorkload is the serialised form. Durations are nanoseconds (Go's
// native time.Duration encoding) so round-trips are exact.
type jsonWorkload struct {
	Params Params     `json:"params"`
	Types  []jsonType `json:"types"`
	Txns   []jsonSpec `json:"txns"`
}

type jsonType struct {
	ID      int           `json:"id"`
	Items   []int         `json:"items"`
	Compute time.Duration `json:"compute_ns"`
	Class   int           `json:"class,omitempty"`
}

type jsonSpec struct {
	ID          int           `json:"id"`
	Type        int           `json:"type"`
	Arrival     time.Duration `json:"arrival_ns"`
	Deadline    time.Duration `json:"deadline_ns"`
	Items       []int         `json:"items"`
	Compute     time.Duration `json:"compute_ns"`
	NeedsIO     []bool        `json:"needs_io,omitempty"`
	Reads       []bool        `json:"reads,omitempty"`
	Criticality int           `json:"criticality,omitempty"`
	Class       int           `json:"class,omitempty"`
	MightFull   []int         `json:"might_full,omitempty"`
	DecisionIdx int           `json:"decision_index,omitempty"`
}

func itemsToInts(items []txn.Item) []int {
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = int(it)
	}
	return out
}

func intsToItems(ints []int) []txn.Item {
	out := make([]txn.Item, len(ints))
	for i, v := range ints {
		out[i] = txn.Item(v)
	}
	return out
}

// WriteJSON serialises the workload (params, types and instances) so a run
// can be archived and replayed — including across policies, which is how
// the reproduction guarantees both sides of a comparison see identical
// inputs.
func (w *Workload) WriteJSON(out io.Writer) error {
	jw := jsonWorkload{Params: w.Params}
	for _, t := range w.Types {
		jw.Types = append(jw.Types, jsonType{ID: t.ID, Items: itemsToInts(t.Items), Compute: t.Compute, Class: t.Class})
	}
	for i := range w.Txns {
		s := &w.Txns[i]
		jw.Txns = append(jw.Txns, jsonSpec{
			ID: s.ID, Type: s.Type, Arrival: s.Arrival, Deadline: s.Deadline,
			Items: itemsToInts(s.Items), Compute: s.Compute,
			NeedsIO: s.NeedsIO, Reads: s.Reads, Criticality: s.Criticality, Class: s.Class,
			MightFull: itemsToInts(s.MightFull), DecisionIdx: s.DecisionIndex,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(jw)
}

// ReadJSON deserialises and validates a workload written by WriteJSON.
func ReadJSON(in io.Reader) (*Workload, error) {
	var jw jsonWorkload
	if err := json.NewDecoder(in).Decode(&jw); err != nil {
		return nil, fmt.Errorf("workload: decoding: %w", err)
	}
	w := &Workload{Params: jw.Params}
	for _, t := range jw.Types {
		w.Types = append(w.Types, Type{ID: t.ID, Items: intsToItems(t.Items), Compute: t.Compute, Class: t.Class})
	}
	for _, s := range jw.Txns {
		w.Txns = append(w.Txns, Spec{
			ID: s.ID, Type: s.Type, Arrival: s.Arrival, Deadline: s.Deadline,
			Items: intsToItems(s.Items), Compute: s.Compute,
			NeedsIO: s.NeedsIO, Reads: s.Reads, Criticality: s.Criticality, Class: s.Class,
			MightFull: intsToItems(s.MightFull), DecisionIndex: s.DecisionIdx,
		})
	}
	if err := w.Check(); err != nil {
		return nil, err
	}
	return w, nil
}

// Check validates the structural invariants a replayable workload must
// satisfy: dense IDs in arrival order, at least one item per transaction,
// items within the database, deadlines after arrival.
func (w *Workload) Check() error {
	if len(w.Txns) == 0 {
		return fmt.Errorf("workload: no transactions")
	}
	if w.Params.DBSize <= 0 {
		return fmt.Errorf("workload: DBSize %d <= 0", w.Params.DBSize)
	}
	var prev time.Duration = -1
	for i := range w.Txns {
		s := &w.Txns[i]
		if s.ID != i {
			return fmt.Errorf("workload: transaction %d has ID %d", i, s.ID)
		}
		if len(s.Items) == 0 {
			return fmt.Errorf("workload: transaction %d has no items", i)
		}
		if s.Compute <= 0 {
			return fmt.Errorf("workload: transaction %d has compute %v", i, s.Compute)
		}
		for _, it := range s.Items {
			if int(it) < 0 || int(it) >= w.Params.DBSize {
				return fmt.Errorf("workload: transaction %d item %d outside [0,%d)", i, it, w.Params.DBSize)
			}
		}
		if len(s.NeedsIO) != 0 && len(s.NeedsIO) != len(s.Items) {
			return fmt.Errorf("workload: transaction %d NeedsIO length %d != %d items", i, len(s.NeedsIO), len(s.Items))
		}
		if len(s.Reads) != 0 && len(s.Reads) != len(s.Items) {
			return fmt.Errorf("workload: transaction %d Reads length %d != %d items", i, len(s.Reads), len(s.Items))
		}
		if len(s.MightFull) > 0 {
			full := txn.NewSet(s.MightFull...)
			for _, it := range s.Items {
				if !full.Contains(it) {
					return fmt.Errorf("workload: transaction %d executes item %d outside its might-set", i, it)
				}
			}
			if s.DecisionIndex < 0 || s.DecisionIndex >= len(s.Items) {
				return fmt.Errorf("workload: transaction %d decision index %d out of range", i, s.DecisionIndex)
			}
		}
		if s.Arrival < prev {
			return fmt.Errorf("workload: transaction %d arrives before its predecessor", i)
		}
		if s.Deadline <= s.Arrival {
			return fmt.Errorf("workload: transaction %d deadline %v not after arrival %v", i, s.Deadline, s.Arrival)
		}
		prev = s.Arrival
	}
	return nil
}

// Describe summarises the workload for human inspection.
func (w *Workload) Describe() string {
	var updates, res float64
	ios := 0
	for i := range w.Txns {
		s := &w.Txns[i]
		updates += float64(len(s.Items))
		res += float64(s.ResourceTime(w.Params.DiskAccessTime)) / float64(time.Second)
		for _, io := range s.NeedsIO {
			if io {
				ios++
			}
		}
	}
	n := float64(len(w.Txns))
	span := w.Txns[len(w.Txns)-1].Arrival - w.Txns[0].Arrival
	rate := 0.0
	if span > 0 {
		rate = (n - 1) / (float64(span) / float64(time.Second))
	}
	return fmt.Sprintf(
		"transactions: %d  types: %d  db: %d objects\n"+
			"mean updates/txn: %.1f  mean resource time: %.1f ms  disk accesses: %d\n"+
			"observed arrival rate: %.2f tr/s  offered CPU load: %.2f\n",
		len(w.Txns), len(w.Types), w.Params.DBSize,
		updates/n, res/n*1000, ios,
		rate, rate*res/n)
}
