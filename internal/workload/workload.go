// Package workload generates the transaction workloads of the paper's two
// simulation studies (§4 Table 1 and §5 Table 2):
//
//   - transactions arrive by a Poisson process with rate λ;
//   - every transaction is an instance of one of TxnTypes transaction types,
//     chosen uniformly; a type's item set is drawn once per run — its size
//     from N(UpdatesMean, UpdatesStd) clamped to [1, DBSize], the items
//     uniformly without replacement from the database;
//   - the deadline is arrival + resourceTime × (1 + slack), slack uniform in
//     [MinSlack, MaxSlack];
//   - in the disk-resident configuration each update independently requires
//     a disk access with probability DiskAccessProb.
//
// The high-variance experiment (§4.2) partitions the types into classes with
// different per-update computation times (0.4 ms / 4 ms / 40 ms).
package workload

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/stats"
	"repro/internal/txn"
)

// Class describes one transaction-type class of the high-variance
// experiment: a fraction of the types and their per-update CPU time.
type Class struct {
	// Fraction of transaction types in this class; the fractions of all
	// classes must sum to 1.
	Fraction float64
	// ComputePerUpdate is the CPU time per item update for this class.
	ComputePerUpdate time.Duration
}

// Params describes a workload. The zero value is not valid; start from
// BaseMainMemory or BaseDisk.
type Params struct {
	// TxnTypes is the number of transaction types (paper: 50).
	TxnTypes int
	// UpdatesMean and UpdatesStd parameterise the per-type update count
	// (paper: 20, 10).
	UpdatesMean, UpdatesStd float64
	// DBSize is the number of objects in the database (paper: 30).
	DBSize int
	// ComputePerUpdate is the CPU time per item update (paper: 4 ms).
	// Ignored when Classes is non-empty.
	ComputePerUpdate time.Duration
	// Classes optionally partitions types into compute-time classes
	// (the §4.2 high-variance experiment).
	Classes []Class
	// MinSlack and MaxSlack bound the slack fraction of the deadline
	// (paper: 0.2 and 8.0, i.e. 20% and 800% of the resource time).
	MinSlack, MaxSlack float64
	// ArrivalRate is λ, in transactions per second.
	ArrivalRate float64
	// Count is the number of transactions per run (paper: 1000 for main
	// memory, 300 for disk).
	Count int
	// DiskAccessProb is the probability an update needs a disk access
	// (paper: 0 for main memory, 1/10 for disk resident).
	DiskAccessProb float64
	// DiskAccessTime is the disk service time (paper: 25 ms).
	DiskAccessTime time.Duration
	// ReadFraction is the probability an access takes a shared rather
	// than exclusive lock (extension; the paper uses write locks only).
	ReadFraction float64
	// CriticalityLevels, when > 1, assigns each transaction a uniform
	// criticality in [0, CriticalityLevels) (extension; the paper assumes
	// "same criticalness").
	CriticalityLevels int
	// DecisionPoints, when true, builds each transaction type as a two-way
	// decision tree (paper §3.2.2): a common prefix of updates followed
	// by one of two alternative branches. Until an instance executes its
	// decision point, its might-access set pessimistically covers both
	// branches; afterwards it narrows to the taken branch. This simulates
	// the conditionally-conflicting behaviour the paper's own simulator
	// omitted ("we didn't simulate the effects of conditionally unsafe
	// and conditionally conflict", §6).
	DecisionPoints bool
}

// BaseMainMemory returns Table 1's base parameters.
func BaseMainMemory() Params {
	return Params{
		TxnTypes:         50,
		UpdatesMean:      20,
		UpdatesStd:       10,
		DBSize:           30,
		ComputePerUpdate: 4 * time.Millisecond,
		MinSlack:         0.2,
		MaxSlack:         8.0,
		ArrivalRate:      5,
		Count:            1000,
	}
}

// BaseDisk returns Table 2's base parameters.
func BaseDisk() Params {
	p := BaseMainMemory()
	p.ArrivalRate = 4
	p.Count = 300
	p.DiskAccessProb = 0.1
	p.DiskAccessTime = 25 * time.Millisecond
	return p
}

// HighVariance returns the §4.2 configuration: three equal classes with
// 0.4 ms, 4 ms and 40 ms per update.
func HighVariance() Params {
	p := BaseMainMemory()
	p.Classes = []Class{
		{Fraction: 1.0 / 3.0, ComputePerUpdate: 400 * time.Microsecond},
		{Fraction: 1.0 / 3.0, ComputePerUpdate: 4 * time.Millisecond},
		{Fraction: 1.0 / 3.0, ComputePerUpdate: 40 * time.Millisecond},
	}
	p.ArrivalRate = 1
	return p
}

// Validate reports the first problem with the parameters.
func (p Params) Validate() error {
	switch {
	case p.TxnTypes <= 0:
		return fmt.Errorf("workload: TxnTypes %d <= 0", p.TxnTypes)
	case p.DBSize <= 0:
		return fmt.Errorf("workload: DBSize %d <= 0", p.DBSize)
	case p.UpdatesMean <= 0:
		return fmt.Errorf("workload: UpdatesMean %v <= 0", p.UpdatesMean)
	case p.UpdatesStd < 0:
		return fmt.Errorf("workload: UpdatesStd %v < 0", p.UpdatesStd)
	case len(p.Classes) == 0 && p.ComputePerUpdate <= 0:
		return fmt.Errorf("workload: ComputePerUpdate %v <= 0", p.ComputePerUpdate)
	case p.MinSlack < 0 || p.MaxSlack < p.MinSlack:
		return fmt.Errorf("workload: slack range [%v, %v] invalid", p.MinSlack, p.MaxSlack)
	case p.ArrivalRate <= 0:
		return fmt.Errorf("workload: ArrivalRate %v <= 0", p.ArrivalRate)
	case p.Count <= 0:
		return fmt.Errorf("workload: Count %d <= 0", p.Count)
	case p.DiskAccessProb < 0 || p.DiskAccessProb > 1:
		return fmt.Errorf("workload: DiskAccessProb %v outside [0,1]", p.DiskAccessProb)
	case p.DiskAccessProb > 0 && p.DiskAccessTime <= 0:
		return fmt.Errorf("workload: DiskAccessTime %v <= 0 with DiskAccessProb %v", p.DiskAccessTime, p.DiskAccessProb)
	case p.ReadFraction < 0 || p.ReadFraction > 1:
		return fmt.Errorf("workload: ReadFraction %v outside [0,1]", p.ReadFraction)
	}
	if len(p.Classes) > 0 {
		var sum float64
		for i, c := range p.Classes {
			if c.Fraction < 0 || c.ComputePerUpdate <= 0 {
				return fmt.Errorf("workload: class %d invalid", i)
			}
			sum += c.Fraction
		}
		if sum < 0.999 || sum > 1.001 {
			return fmt.Errorf("workload: class fractions sum to %v, want 1", sum)
		}
	}
	return nil
}

// Type is one pre-analysed transaction type: a fixed item set and per-update
// compute time shared by all its instances in a run. When the workload uses
// decision points, the item set splits into a common prefix and two branch
// alternatives (a two-leaf transaction tree, paper Figure 2).
type Type struct {
	ID      int
	Items   []txn.Item
	Compute time.Duration
	Class   int
	// Prefix/BranchA/BranchB hold the tree decomposition when
	// DecisionPoints is on; Items then equals Prefix (the shared part).
	Prefix  []txn.Item
	BranchA []txn.Item
	BranchB []txn.Item
}

// Program returns the transaction tree of the type (paper §3.2.2): a flat
// single-node program, or a one-decision tree when the workload uses
// decision points.
func (t *Type) Program(name string) *txn.Program {
	if len(t.BranchA) == 0 {
		return txn.Flat(name, t.Items...)
	}
	return &txn.Program{
		Name: name,
		Root: &txn.Node{
			Label:    name,
			Accesses: txn.NewSet(t.Prefix...),
			Children: []*txn.Node{
				{Label: name + "/a", Accesses: txn.NewSet(t.BranchA...)},
				{Label: name + "/b", Accesses: txn.NewSet(t.BranchB...)},
			},
		},
	}
}

// Spec is one generated transaction instance.
type Spec struct {
	// ID is the instance's index in arrival order.
	ID int
	// Type indexes the transaction type.
	Type int
	// Arrival is the release time (release = arrival in the paper).
	Arrival time.Duration
	// Deadline is the absolute soft deadline.
	Deadline time.Duration
	// Items is the access list (shared with the type; do not mutate).
	Items []txn.Item
	// Compute is the CPU time per update.
	Compute time.Duration
	// NeedsIO flags, per update, whether a disk access precedes the
	// computation (empty means none, i.e. main-memory resident).
	NeedsIO []bool
	// Reads flags, per update, whether the access takes a shared lock
	// (extension; empty means all writes).
	Reads []bool
	// Criticality is the transaction's criticality level (extension;
	// 0 when the workload has a single level).
	Criticality int
	// Class is the compute-time class of the transaction's type (0 when
	// the workload has a single class).
	Class int
	// MightFull, when non-empty, is the pessimistic pre-decision
	// might-access set (prefix plus every branch alternative); Items
	// holds the actually-executed path. Empty means the transaction is
	// flat: might = Items throughout.
	MightFull []txn.Item
	// DecisionIndex is the update index whose completion narrows the
	// might-access set from MightFull to Items (the decision point).
	// Meaningful only when MightFull is non-empty.
	DecisionIndex int
}

// ResourceTime returns the transaction's isolated static execution time:
// compute per update plus disk time for each update that needs IO. This is
// the "resource time" of the paper's deadline formula.
func (s *Spec) ResourceTime(diskAccess time.Duration) time.Duration {
	t := time.Duration(len(s.Items)) * s.Compute
	for _, io := range s.NeedsIO {
		if io {
			t += diskAccess
		}
	}
	return t
}

// Workload is a fully generated run: the types and the arrival-ordered
// transaction instances.
type Workload struct {
	Params Params
	Types  []Type
	Txns   []Spec
}

// Generate draws a complete workload for one run. The same (params, seed)
// always yields the same workload, and independent random streams are used
// for each aspect so that, e.g., enabling disk accesses does not perturb
// arrival times.
func Generate(p Params, seed int64) (*Workload, error) {
	return GenerateFaulted(p, seed, nil)
}

// GenerateFaulted is Generate with arrival-burst injection: while the
// running arrival clock is inside a burst window, the mean inter-arrival
// time is divided by the burst's rate factor, compressing arrivals into a
// storm. Every random draw of Generate happens identically and in the same
// order — one scaled multiplication aside — so a nil or empty burst list
// yields a workload bit-identical to Generate's.
func GenerateFaulted(p Params, seed int64, bursts []fault.Burst) (*Workload, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for i, b := range bursts {
		if b.Start < 0 || b.End <= b.Start || b.RateFactor <= 0 {
			return nil, fmt.Errorf("workload: burst %d invalid", i)
		}
	}
	src := stats.NewSource(seed)
	typeSize := src.Stream("type-size")
	typeItems := src.Stream("type-items")
	arrivals := src.Stream("arrivals")
	typePick := src.Stream("type-pick")
	slack := src.Stream("slack")
	io := src.Stream("io")
	reads := src.Stream("reads")
	crit := src.Stream("criticality")

	w := &Workload{Params: p}

	// Types: item count from clamped normal, items without replacement.
	branchPick := src.Stream("branch")
	for i := 0; i < p.TxnTypes; i++ {
		n := typeSize.NormalIntClamped(p.UpdatesMean, p.UpdatesStd, 1, p.DBSize)
		t := Type{ID: i, Compute: p.ComputePerUpdate}
		if p.DecisionPoints && n >= 2 {
			// Two-leaf tree: a prefix of about half the updates, then
			// two alternative branches of the remaining length each
			// (so an executed path still has n updates, matching the
			// flat workload's resource time).
			prefixLen := (n + 1) / 2
			branchLen := n - prefixLen
			need := prefixLen + 2*branchLen
			if need > p.DBSize {
				need = p.DBSize
				branchLen = (need - prefixLen) / 2
			}
			idx := typeItems.SampleWithoutReplacement(p.DBSize, prefixLen+2*branchLen)
			all := make([]txn.Item, len(idx))
			for j, v := range idx {
				all[j] = txn.Item(v)
			}
			t.Prefix = all[:prefixLen]
			t.BranchA = all[prefixLen : prefixLen+branchLen]
			t.BranchB = all[prefixLen+branchLen:]
			t.Items = t.Prefix
		} else {
			idx := typeItems.SampleWithoutReplacement(p.DBSize, n)
			items := make([]txn.Item, n)
			for j, v := range idx {
				items[j] = txn.Item(v)
			}
			t.Items = items
		}
		if len(p.Classes) > 0 {
			t.Class = classOf(i, p.TxnTypes, p.Classes)
			t.Compute = p.Classes[t.Class].ComputePerUpdate
		}
		w.Types = append(w.Types, t)
	}

	// Instances: Poisson arrivals, uniform type choice, slack-based deadline.
	meanIAT := 1.0 / p.ArrivalRate // seconds
	var now time.Duration
	for i := 0; i < p.Count; i++ {
		iat := arrivals.Exponential(meanIAT)
		for _, b := range bursts {
			if b.Contains(now) {
				iat /= b.RateFactor
				break
			}
		}
		now += time.Duration(iat * float64(time.Second))
		ty := &w.Types[typePick.Intn(p.TxnTypes)]
		s := Spec{
			ID:      i,
			Type:    ty.ID,
			Arrival: now,
			Items:   ty.Items,
			Compute: ty.Compute,
			Class:   ty.Class,
		}
		if len(ty.BranchA) > 0 {
			// Draw the branch this instance will take; until the last
			// prefix update completes, the pre-analysis can only bound
			// the access set by the union of both branches.
			branch := ty.BranchA
			if branchPick.Bernoulli(0.5) {
				branch = ty.BranchB
			}
			s.Items = append(append([]txn.Item(nil), ty.Prefix...), branch...)
			s.MightFull = make([]txn.Item, 0, len(ty.Prefix)+len(ty.BranchA)+len(ty.BranchB))
			s.MightFull = append(s.MightFull, ty.Prefix...)
			s.MightFull = append(s.MightFull, ty.BranchA...)
			s.MightFull = append(s.MightFull, ty.BranchB...)
			s.DecisionIndex = len(ty.Prefix) - 1
		}
		if p.DiskAccessProb > 0 {
			s.NeedsIO = make([]bool, len(ty.Items))
			for j := range s.NeedsIO {
				s.NeedsIO[j] = io.Bernoulli(p.DiskAccessProb)
			}
		}
		if p.ReadFraction > 0 {
			s.Reads = make([]bool, len(ty.Items))
			for j := range s.Reads {
				s.Reads[j] = reads.Bernoulli(p.ReadFraction)
			}
		}
		if p.CriticalityLevels > 1 {
			s.Criticality = crit.Intn(p.CriticalityLevels)
		}
		res := s.ResourceTime(p.DiskAccessTime)
		sl := slack.Uniform(p.MinSlack, p.MaxSlack)
		s.Deadline = s.Arrival + time.Duration(float64(res)*(1+sl))
		w.Txns = append(w.Txns, s)
	}
	return w, nil
}

// MustGenerate is Generate for known-good parameters; it panics on error.
func MustGenerate(p Params, seed int64) *Workload {
	w, err := Generate(p, seed)
	if err != nil {
		panic(err)
	}
	return w
}

// classOf assigns type i of n to a class by cumulative fraction, so a third
// of the types land in each class of the high-variance experiment.
func classOf(i, n int, classes []Class) int {
	pos := (float64(i) + 0.5) / float64(n)
	var cum float64
	for c, cl := range classes {
		cum += cl.Fraction
		if pos < cum {
			return c
		}
	}
	return len(classes) - 1
}

// MeanComputePerUpdate returns the expected CPU time per update across
// classes (the paper's 0.4+4+40)/3 for the high-variance workload).
func (p Params) MeanComputePerUpdate() time.Duration {
	if len(p.Classes) == 0 {
		return p.ComputePerUpdate
	}
	var mean float64
	for _, c := range p.Classes {
		mean += c.Fraction * float64(c.ComputePerUpdate)
	}
	return time.Duration(mean)
}

// CPUCapacity returns the paper's no-abort CPU capacity estimate in
// transactions per second: 1 / (updates per transaction × compute per
// update). Table 1's base parameters give 12.5 tr/s; the high-variance
// parameters give ≈3.37 tr/s.
func (p Params) CPUCapacity() float64 {
	perTxn := p.UpdatesMean * float64(p.MeanComputePerUpdate()) / float64(time.Second)
	return 1 / perTxn
}

// DiskUtilizationAt returns the expected disk utilisation at the given
// arrival rate: λ × updates × P(IO) × access time. The paper computes 62.5%
// at the 12.5 tr/s capacity point.
func (p Params) DiskUtilizationAt(rate float64) float64 {
	return rate * p.UpdatesMean * p.DiskAccessProb * float64(p.DiskAccessTime) / float64(time.Second)
}
