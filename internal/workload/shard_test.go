package workload

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/txn"
)

func TestHomeShardSingle(t *testing.T) {
	s := &Spec{Items: []txn.Item{4, 8, 12}} // all ≡ 0 mod 4
	home, cross := s.HomeShard(4)
	if home != 0 || cross {
		t.Fatalf("HomeShard = (%d, %v), want (0, false)", home, cross)
	}
	if home, cross := s.HomeShard(1); home != 0 || cross {
		t.Fatalf("1-shard HomeShard = (%d, %v), want (0, false)", home, cross)
	}
}

func TestHomeShardCross(t *testing.T) {
	s := &Spec{Items: []txn.Item{5, 8}} // shards 1 and 0 under n=4
	home, cross := s.HomeShard(4)
	if home != 0 || !cross {
		t.Fatalf("HomeShard = (%d, %v), want (0, true)", home, cross)
	}
}

// A transaction whose executed path stays on one shard but whose untaken
// branch crosses is still cross-shard: classification is by pre-analysis
// footprint, not by the executed path.
func TestHomeShardUsesFootprint(t *testing.T) {
	s := &Spec{
		Items:         []txn.Item{0, 4},
		MightFull:     []txn.Item{0, 4, 5}, // item 5 lives on shard 1
		DecisionIndex: 1,
	}
	if _, cross := s.HomeShard(4); !cross {
		t.Fatal("spec with cross-shard might-set classified single-shard")
	}
}

func TestSplitShards(t *testing.T) {
	s := &Spec{
		ID:       7,
		Arrival:  time.Second,
		Deadline: 2 * time.Second,
		Items:    []txn.Item{0, 5, 4, 9},
		Compute:  3 * time.Millisecond,
		Reads:    []bool{true, false, true, false},
		NeedsIO:  []bool{false, true, false, true},
		Class:    2,
	}
	parts := s.SplitShards(4)
	if len(parts) != 2 {
		t.Fatalf("got %d parts, want 2: %+v", len(parts), parts)
	}
	p0, p1 := parts[0], parts[1]
	if p0.Shard != 0 || p1.Shard != 1 {
		t.Fatalf("parts on shards %d, %d; want 0, 1", p0.Shard, p1.Shard)
	}
	if !reflect.DeepEqual(p0.Spec.Items, []txn.Item{0, 4}) {
		t.Fatalf("shard 0 items = %v", p0.Spec.Items)
	}
	if !reflect.DeepEqual(p0.Spec.Reads, []bool{true, true}) ||
		!reflect.DeepEqual(p0.Spec.NeedsIO, []bool{false, false}) {
		t.Fatalf("shard 0 flags misaligned: reads=%v io=%v", p0.Spec.Reads, p0.Spec.NeedsIO)
	}
	if !reflect.DeepEqual(p1.Spec.Items, []txn.Item{5, 9}) ||
		!reflect.DeepEqual(p1.Spec.Reads, []bool{false, false}) ||
		!reflect.DeepEqual(p1.Spec.NeedsIO, []bool{true, true}) {
		t.Fatalf("shard 1 part wrong: %+v", p1.Spec)
	}
	for _, p := range parts {
		if p.Spec.ID != 7 || p.Spec.Class != 2 || p.Spec.Deadline != 2*time.Second {
			t.Fatalf("part lost scalar fields: %+v", p.Spec)
		}
	}
}

func TestSplitShardsMightSet(t *testing.T) {
	s := &Spec{
		Items:         []txn.Item{0, 1},
		MightFull:     []txn.Item{0, 1, 2, 5}, // shard 2 only in the might-set
		DecisionIndex: 1,
	}
	parts := s.SplitShards(4)
	if len(parts) != 2 {
		t.Fatalf("got %d parts, want 2 (shard 2 has nothing to execute)", len(parts))
	}
	if !reflect.DeepEqual(parts[0].Spec.MightFull, []txn.Item{0}) {
		t.Fatalf("shard 0 might-set = %v, want [0]", parts[0].Spec.MightFull)
	}
	if !reflect.DeepEqual(parts[1].Spec.MightFull, []txn.Item{1, 5}) {
		t.Fatalf("shard 1 might-set = %v, want [1 5]", parts[1].Spec.MightFull)
	}
	for _, p := range parts {
		if p.Spec.DecisionIndex != -1 {
			t.Fatalf("part DecisionIndex = %d, want -1 (never narrows)", p.Spec.DecisionIndex)
		}
	}
}

func TestShardOfAndTouched(t *testing.T) {
	if txn.ShardOf(10, 4) != 2 {
		t.Fatal("ShardOf(10, 4) != 2")
	}
	if mask := txn.ShardsTouched([]txn.Item{1, 5, 9}, 4); mask != 1<<1 {
		t.Fatalf("mask = %b, want only shard 1", mask)
	}
	if mask := txn.ShardsTouched([]txn.Item{0, 3}, 4); mask != (1|1<<3) {
		t.Fatalf("mask = %b, want shards 0 and 3", mask)
	}
}
