package workload

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// fuzzSeedJSON renders a small generated workload as seed-corpus JSON.
func fuzzSeedJSON(tb testing.TB, mutate func(*Params)) []byte {
	tb.Helper()
	p := BaseMainMemory()
	p.Count = 6
	p.ArrivalRate = 10
	if mutate != nil {
		mutate(&p)
	}
	w, err := Generate(p, 1)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzCodecRoundTrip throws arbitrary bytes at the workload codec. Corrupt
// input must produce an error, never a panic; input the decoder accepts
// must round-trip exactly: decode ∘ encode is the identity on accepted
// workloads (encode → decode → compare, then encode again → identical
// bytes).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(fuzzSeedJSON(f, nil))
	f.Add(fuzzSeedJSON(f, func(p *Params) { p.ReadFraction = 0.5 }))
	f.Add(fuzzSeedJSON(f, func(p *Params) {
		p.DiskAccessProb = 0.5
		p.DiskAccessTime = 25 * time.Millisecond
		p.CriticalityLevels = 3
	}))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"params":{"db_size":0},"txns":[]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"params":` + `{` + `"DBSize":3},"txns":[{"id":0,"items":[9]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected input; only panics are failures
		}
		var enc bytes.Buffer
		if err := w.WriteJSON(&enc); err != nil {
			t.Fatalf("accepted workload failed to encode: %v", err)
		}
		w2, err := ReadJSON(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("encoded workload failed to decode: %v\n%s", err, enc.String())
		}
		if !reflect.DeepEqual(w, w2) {
			t.Fatal("decode(encode(w)) != w for an accepted workload")
		}
		var enc2 bytes.Buffer
		if err := w2.WriteJSON(&enc2); err != nil {
			t.Fatalf("re-encoding failed: %v", err)
		}
		if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
			t.Fatal("encoding is not deterministic across a round trip")
		}
	})
}
