// Package wal is a segmented, checksummed write-ahead log of accepted
// submissions and their terminal outcomes.
//
// The serving path appends a submit record before a submission is
// injected into the engine and an outcome record when the engine
// resolves it; the client's response is released only once the outcome
// record is durable. Appends are buffered in memory and a dedicated
// sync goroutine writes and fsyncs them in batches (group commit), so
// the engine driver never blocks on disk. Because appends are strictly
// FIFO, a durable outcome implies its submit record is durable too —
// the ack needs exactly one fsync wait.
//
// Segments rotate at a size threshold and are named by a monotonic
// ordinal (wal-%016x.log), so lexicographic order is log order. Closed
// segments whose every submission has a durable outcome are deleted
// once they age past the retention count. Recovery (Open) scans the
// segments in order, truncates a torn tail in the final segment, and
// reports the submissions that never reached an outcome so the server
// can replay them through the unchanged deterministic kernel.
package wal

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Defaults applied by Open when the corresponding Options field is zero.
const (
	DefaultSegmentBytes = 64 << 20
	DefaultRetain       = 2
)

// ErrClosed is returned by appends after Close has begun.
var ErrClosed = errors.New("wal: logger closed")

// Options configures Open.
type Options struct {
	// FS is the directory holding the segments. Required.
	FS FS
	// SyncEvery is the group-commit interval: appends are written and
	// fsynced at most this often. Zero means the sync goroutine flushes
	// as soon as it observes pending appends (per-batch durability,
	// lowest latency, most fsyncs).
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment once it reaches this many
	// bytes. Defaults to DefaultSegmentBytes.
	SegmentBytes int64
	// Retain is how many fully-resolved closed segments to keep before
	// deletion. Segments holding unresolved submissions are never
	// deleted. Defaults to DefaultRetain.
	Retain int
	// WrapFile, if non-nil, wraps every segment file the logger creates
	// — the hook fault.FilePlan uses to inject torn writes, short
	// writes and fsync errors.
	WrapFile func(name string, f File) File
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = DefaultSegmentBytes
	}
	if out.Retain <= 0 {
		out.Retain = DefaultRetain
	}
	return out
}

// Stats is a point-in-time snapshot of logger counters.
type Stats struct {
	Submits     uint64 `json:"submits"`      // submit records appended
	Outcomes    uint64 `json:"outcomes"`     // outcome records appended
	Syncs       uint64 `json:"syncs"`        // fsync batches completed
	Rotations   uint64 `json:"rotations"`    // segment rotations
	Removed     uint64 `json:"removed"`      // segments deleted by retention
	Bytes       uint64 `json:"bytes"`        // record bytes written durably
	Segments    int    `json:"segments"`     // live segment files
	Unresolved  int    `json:"unresolved"`   // submits without a durable outcome
	PendingSync int    `json:"pending_sync"` // bytes buffered, not yet durable
	Failed      bool   `json:"failed"`       // sticky failure state
}

type segment struct {
	ord         uint64
	name        string
	f           File // nil once closed
	size        int64
	outstanding int // submits here without a durable outcome
}

// Logger is the append side of the WAL. All methods are safe for
// concurrent use.
type Logger struct {
	opt Options

	mu          sync.Mutex
	nextSeq     uint64
	nextOrd     uint64
	buf         []byte // encoded records awaiting the next flush
	spare       []byte // recycled flush buffer
	cbs         []func(error)
	pendSubmits []uint64 // seqs of submit records in buf
	pendResolve []uint64 // seqs resolved by outcome records in buf
	segs        []*segment
	bySeq       map[uint64]*segment // unresolved submit seq -> its segment
	closing     bool
	failed      error
	stats       Stats

	flushMu sync.Mutex // serializes flush bodies (syncer vs Sync)
	kick    chan struct{}
	stop    chan struct{}
	done    chan struct{}
}

func newLogger(opt Options, nextSeq, nextOrd uint64) *Logger {
	l := &Logger{
		opt:     opt,
		nextSeq: nextSeq,
		nextOrd: nextOrd,
		bySeq:   make(map[uint64]*segment),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	// The caller starts l.run() once old-segment state is populated.
	return l
}

func segName(ord uint64) string { return fmt.Sprintf("wal-%016x.log", ord) }

func parseSegName(name string) (uint64, bool) {
	const pfx, sfx = "wal-", ".log"
	if len(name) != len(pfx)+16+len(sfx) ||
		name[:len(pfx)] != pfx || name[len(name)-len(sfx):] != sfx {
		return 0, false
	}
	ord, err := strconv.ParseUint(name[len(pfx):len(pfx)+16], 16, 64)
	if err != nil {
		return 0, false
	}
	return ord, true
}

// AppendSubmit assigns the next sequence number, stamps it into r, and
// buffers a submit record for the next group commit. It never blocks
// on I/O. The record is durable once any later outcome append's
// durability callback fires (FIFO order), or after Sync.
func (l *Logger) AppendSubmit(r *SubmitRecord) (uint64, error) {
	l.mu.Lock()
	if err := l.appendErrLocked(); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	seq := l.nextSeq
	l.nextSeq++
	r.Seq = seq
	l.buf = AppendSubmit(l.buf, r)
	l.pendSubmits = append(l.pendSubmits, seq)
	l.stats.Submits++
	l.mu.Unlock()
	l.kickSync()
	return seq, nil
}

// AppendOutcome buffers an outcome record for r.Seq. durable, if
// non-nil, is called exactly once from the sync goroutine: with nil
// after the record (and, by FIFO order, the matching submit record) is
// fsynced, or with the write/sync error that lost it. An error return
// means nothing was buffered and durable will not be called.
func (l *Logger) AppendOutcome(r *OutcomeRecord, durable func(error)) error {
	l.mu.Lock()
	if err := l.appendErrLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	l.buf = AppendOutcome(l.buf, r)
	if durable != nil {
		l.cbs = append(l.cbs, durable)
	}
	l.pendResolve = append(l.pendResolve, r.Seq)
	l.stats.Outcomes++
	l.mu.Unlock()
	l.kickSync()
	return nil
}

func (l *Logger) appendErrLocked() error {
	if l.failed != nil {
		return l.failed
	}
	if l.closing {
		return ErrClosed
	}
	return nil
}

func (l *Logger) kickSync() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// Sync forces everything appended so far to disk and returns the
// flush result. Safe to call concurrently with appends.
func (l *Logger) Sync() error { return l.flush() }

// Close flushes pending records, stops the sync goroutine and closes
// the active segment. Appends issued after Close has begun fail with
// ErrClosed. Close returns the sticky failure, if any.
func (l *Logger) Close() error {
	l.mu.Lock()
	already := l.closing
	l.closing = true
	l.mu.Unlock()
	if !already {
		close(l.stop)
	}
	<-l.done
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.segs); n > 0 && l.segs[n-1].f != nil {
		l.segs[n-1].f.Close()
		l.segs[n-1].f = nil
	}
	return l.failed
}

// Stats returns a snapshot of logger counters.
func (l *Logger) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Segments = len(l.segs)
	s.Unresolved = len(l.bySeq)
	s.PendingSync = len(l.buf)
	s.Failed = l.failed != nil
	return s
}

// NextSeq reports the next sequence number AppendSubmit will assign.
func (l *Logger) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// run is the sync goroutine: group-commit loop until Close.
func (l *Logger) run() {
	defer close(l.done)
	var timer *time.Timer
	for {
		select {
		case <-l.kick:
		case <-l.stop:
			l.flush()
			return
		}
		if l.opt.SyncEvery > 0 {
			// Coalesce appends arriving during the interval into one
			// write+fsync; a stop request flushes what is there.
			if timer == nil {
				timer = time.NewTimer(l.opt.SyncEvery)
			} else {
				timer.Reset(l.opt.SyncEvery)
			}
			select {
			case <-timer.C:
			case <-l.stop:
				timer.Stop()
				l.flush()
				return
			}
		}
		l.flush()
	}
}

// flush writes and fsyncs all buffered records as one batch, fires the
// batch's durability callbacks, and applies retention.
func (l *Logger) flush() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()

	l.mu.Lock()
	buf := l.buf
	cbs := l.cbs
	subs := l.pendSubmits
	res := l.pendResolve
	l.buf = l.spare[:0]
	l.cbs = nil
	l.pendSubmits = nil
	l.pendResolve = nil
	failed := l.failed
	l.mu.Unlock()

	fail := func(err error) error {
		l.mu.Lock()
		if l.failed == nil {
			l.failed = err
		}
		err = l.failed
		l.mu.Unlock()
		for _, cb := range cbs {
			cb(err)
		}
		return err
	}
	if failed != nil {
		return fail(failed)
	}
	if len(buf) == 0 && len(cbs) == 0 {
		l.recycle(buf)
		return nil
	}
	seg, err := l.activeSegment(int64(len(buf)))
	if err != nil {
		return fail(err)
	}
	if len(buf) > 0 {
		n, werr := seg.f.Write(buf)
		if werr == nil && n < len(buf) {
			werr = fmt.Errorf("wal: short write: %d of %d bytes: %w", n, len(buf), io.ErrShortWrite)
		}
		if werr == nil {
			werr = seg.f.Sync()
		}
		if werr != nil {
			return fail(fmt.Errorf("wal: segment %s: %w", seg.name, werr))
		}
		seg.size += int64(len(buf))
	}

	l.mu.Lock()
	l.stats.Syncs++
	l.stats.Bytes += uint64(len(buf))
	for _, seq := range subs {
		l.bySeq[seq] = seg
		seg.outstanding++
	}
	for _, seq := range res {
		if s, ok := l.bySeq[seq]; ok {
			s.outstanding--
			delete(l.bySeq, seq)
		}
	}
	remove := l.retireLocked()
	l.mu.Unlock()

	for _, cb := range cbs {
		cb(nil)
	}
	for _, name := range remove {
		// Retention is advisory; a failed delete is retried next flush.
		l.opt.FS.Remove(name)
	}
	l.recycle(buf)
	return nil
}

func (l *Logger) recycle(buf []byte) {
	l.mu.Lock()
	l.spare = buf[:0]
	l.mu.Unlock()
}

// activeSegment returns the segment the next batch should be written
// to, rotating or creating one as needed. Called with flushMu held.
func (l *Logger) activeSegment(batch int64) (*segment, error) {
	l.mu.Lock()
	var cur *segment
	if n := len(l.segs); n > 0 && l.segs[n-1].f != nil {
		cur = l.segs[n-1]
	}
	rotate := cur != nil && cur.size > 0 && cur.size+batch > l.opt.SegmentBytes
	ord := l.nextOrd
	l.mu.Unlock()

	if cur != nil && !rotate {
		return cur, nil
	}
	if rotate {
		if err := cur.f.Close(); err != nil {
			return nil, fmt.Errorf("wal: close segment %s: %w", cur.name, err)
		}
	}
	name := segName(ord)
	f, err := l.opt.FS.Create(name)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment %s: %w", name, err)
	}
	if l.opt.WrapFile != nil {
		f = l.opt.WrapFile(name, f)
	}
	seg := &segment{ord: ord, name: name, f: f}
	l.mu.Lock()
	if rotate {
		cur.f = nil
		l.stats.Rotations++
	}
	l.nextOrd++
	l.segs = append(l.segs, seg)
	l.mu.Unlock()
	return seg, nil
}

// retireLocked returns the names of fully-resolved closed segments
// beyond the retention count, removing them from the segment list.
// Only a prefix is ever removed so log order survives. Called with mu
// held.
func (l *Logger) retireLocked() []string {
	closed := len(l.segs)
	if closed > 0 && l.segs[closed-1].f != nil {
		closed--
	}
	var names []string
	for closed-len(names) > l.opt.Retain {
		seg := l.segs[len(names)]
		if seg.outstanding != 0 {
			break
		}
		names = append(names, seg.name)
	}
	if len(names) > 0 {
		l.segs = append(l.segs[:0], l.segs[len(names):]...)
		l.stats.Removed += uint64(len(names))
	}
	return names
}
