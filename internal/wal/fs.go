// Filesystem seam for the WAL. The logger and the recovery scanner
// talk to an FS interface rather than the os package so that crash
// tests can run against MemFS: an in-memory filesystem that tracks,
// per file, how much of the written data has actually been fsynced.
// MemFS.Crash() throws away everything past each file's synced prefix
// — exactly what SIGKILL plus a lost page cache does to a real log —
// which lets the kill-point matrix exercise torn tails deterministically
// and without subprocesses.
package wal

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the slice of *os.File the WAL needs for an open segment.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS abstracts the directory holding WAL segments.
type FS interface {
	// Create creates (or truncates) the named file for appending.
	Create(name string) (File, error)
	// ReadFile returns the full contents of the named file.
	ReadFile(name string) ([]byte, error)
	// List returns the names of regular files in the directory, sorted.
	List() ([]string, error)
	// Remove deletes the named file.
	Remove(name string) error
	// WriteFileAtomic replaces the named file's contents (used by
	// recovery to truncate a torn tail in place).
	WriteFileAtomic(name string, data []byte) error
}

// --- DirFS ---------------------------------------------------------------

// DirFS is the production FS: a single OS directory.
type DirFS struct{ dir string }

// NewDirFS returns a DirFS rooted at dir, creating it if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	return &DirFS{dir: dir}, nil
}

func (d *DirFS) path(name string) string { return filepath.Join(d.dir, name) }

// Create implements FS.
func (d *DirFS) Create(name string) (File, error) {
	f, err := os.OpenFile(d.path(name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ReadFile implements FS.
func (d *DirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(d.path(name))
}

// List implements FS.
func (d *DirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (d *DirFS) Remove(name string) error { return os.Remove(d.path(name)) }

// WriteFileAtomic implements FS via write-to-temp + rename + dir sync,
// so a crash during truncation leaves either the old or the new file.
func (d *DirFS) WriteFileAtomic(name string, data []byte) error {
	tmp := d.path(name + ".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, d.path(name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(d.dir)
}

func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	// Directory fsync is advisory: some filesystems reject it (EINVAL)
	// even though the rename is already durable enough for a log whose
	// tail is checksummed. Surface open errors, tolerate sync ones.
	_ = df.Sync()
	return nil
}

// --- MemFS ---------------------------------------------------------------

// MemFS is an in-memory FS with crash semantics: each file remembers
// the prefix that has been "fsynced", and Crash() rolls every file back
// to that prefix, discarding writes that were acknowledged by Write but
// never reached Sync — the data a real kernel keeps in the page cache
// and loses on power failure or SIGKILL-without-sync.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	fs     *MemFS
	name   string
	data   []byte
	synced int
	closed bool
}

// NewMemFS returns an empty MemFS.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{fs: m, name: name}
	m.files[name] = f
	return f, nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// WriteFileAtomic implements FS. In memory the replacement is trivially
// atomic and durable.
func (m *MemFS) WriteFileAtomic(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{fs: m, name: name, data: append([]byte(nil), data...)}
	f.synced = len(f.data)
	f.closed = true
	m.files[name] = f
	return nil
}

// Crash simulates a process kill plus page-cache loss: every file is
// truncated to its synced prefix. Open handles become stale — a logger
// using this FS must be abandoned, not closed, after Crash.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.data = f.data[:f.synced]
		f.closed = true
	}
}

// Corrupt flips one byte at off in the named file, bypassing the sync
// model — for building bad-checksum fixtures.
func (m *MemFS) Corrupt(name string, off int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok || off < 0 || off >= len(f.data) {
		return fmt.Errorf("wal: corrupt %q@%d: no such byte", name, off)
	}
	f.data[off] ^= 0xff
	if f.synced < off+1 {
		f.synced = off + 1
	}
	return nil
}

// Append appends raw bytes to the named file as if they were written
// and synced — for building torn/garbage-tail fixtures.
func (m *MemFS) Append(name string, p []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "append", Path: name, Err: fs.ErrNotExist}
	}
	f.data = append(f.data, p...)
	f.synced = len(f.data)
	return nil
}

// SyncedLen reports the synced prefix length of the named file.
func (m *MemFS) SyncedLen(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return f.synced
	}
	return -1
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fs.ErrClosed
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	f.synced = len(f.data)
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
