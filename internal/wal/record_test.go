package wal

import (
	"reflect"
	"testing"
	"time"
)

func submitFixtures() []SubmitRecord {
	return []SubmitRecord{
		{Seq: 1, Items: []int32{7}, Compute: time.Millisecond, Deadline: 40 * time.Millisecond},
		{Seq: 2, Items: []int32{1, 2, 3}, Reads: []bool{true, false, true},
			Compute: 3 * time.Millisecond, Deadline: time.Second, Criticality: 2, Class: 1},
		{Seq: 1 << 40, Items: []int32{9, 8, 7, 6, 5, 4, 3, 2, 1},
			Reads:   []bool{true, true, true, false, false, false, true, false, true},
			NeedsIO: []bool{false, false, true, true, false, false, false, true, false},
			Compute: 250 * time.Microsecond, Deadline: 10 * time.Millisecond,
			Criticality: -1, Class: 3},
		{Seq: 4, Items: nil, Compute: time.Microsecond, Deadline: time.Microsecond},
		{Seq: 5, Items: []int32{0, 1, 2, 3, 4, 5, 6, 7},
			NeedsIO: []bool{true, false, true, false, true, false, true, false},
			Compute: time.Millisecond, Deadline: time.Millisecond},
	}
}

func outcomeFixtures() []OutcomeRecord {
	return []OutcomeRecord{
		{Seq: 1, State: 3, Missed: false, Arrival: time.Millisecond, Finish: 2 * time.Millisecond,
			Deadline: 40 * time.Millisecond, Response: time.Millisecond},
		{Seq: 2, Flags: FlagReplayed, State: 4, Missed: true, Restarts: 3,
			Arrival: 0, Finish: time.Second, Deadline: time.Second / 2, Response: time.Second},
		{Seq: 1 << 40, Flags: FlagAborted, State: 5},
		{Seq: 3, Flags: FlagReplayed | FlagAborted, State: 0, Restarts: 1 << 30},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, want := range submitFixtures() {
		buf := AppendSubmit(nil, &want)
		var sub SubmitRecord
		var out OutcomeRecord
		h, n, err := DecodeRecord(buf, &sub, &out)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if n != len(buf) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
		}
		if h.Type != RecSubmit || h.Seq != want.Seq || h.Version != RecordVersion {
			t.Fatalf("header %+v for %+v", h, want)
		}
		if !reflect.DeepEqual(sub, want) {
			t.Fatalf("round trip diverged:\n want %+v\n got  %+v", want, sub)
		}
	}
	for _, want := range outcomeFixtures() {
		buf := AppendOutcome(nil, &want)
		var sub SubmitRecord
		var out OutcomeRecord
		h, n, err := DecodeRecord(buf, &sub, &out)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if n != len(buf) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
		}
		if h.Type != RecOutcome || h.Seq != want.Seq || h.Flags != want.Flags {
			t.Fatalf("header %+v for %+v", h, want)
		}
		if !reflect.DeepEqual(out, want) {
			t.Fatalf("round trip diverged:\n want %+v\n got  %+v", want, out)
		}
	}
}

// TestRecordStream decodes several records appended back to back, the
// way flush writes them.
func TestRecordStream(t *testing.T) {
	var buf []byte
	subs := submitFixtures()
	outs := outcomeFixtures()
	for i := range subs {
		buf = AppendSubmit(buf, &subs[i])
	}
	for i := range outs {
		buf = AppendOutcome(buf, &outs[i])
	}
	var sub SubmitRecord
	var out OutcomeRecord
	var got int
	for off := 0; off < len(buf); {
		_, n, err := DecodeRecord(buf[off:], &sub, &out)
		if err != nil {
			t.Fatalf("record %d at offset %d: %v", got, off, err)
		}
		off += n
		got++
	}
	if want := len(subs) + len(outs); got != want {
		t.Fatalf("decoded %d records, want %d", got, want)
	}
}

func TestRecordRejectsCorruption(t *testing.T) {
	base := AppendSubmit(nil, &submitFixtures()[1])
	var sub SubmitRecord
	var out OutcomeRecord

	// Every single-byte flip must fail the checksum (or a structural check).
	for i := range base {
		bad := append([]byte(nil), base...)
		bad[i] ^= 0x01
		if _, _, err := DecodeRecord(bad, &sub, &out); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
	// Truncation at every boundary is ErrShort or ErrCorrupt, never a panic.
	for i := 0; i < len(base); i++ {
		if _, _, err := DecodeRecord(base[:i], &sub, &out); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
	// A record length below the minimum or above MaxRecord is corrupt.
	tiny := append([]byte(nil), base...)
	tiny[0], tiny[1], tiny[2], tiny[3] = 1, 0, 0, 0
	if _, _, err := DecodeRecord(tiny, &sub, &out); err == nil {
		t.Fatal("undersized length accepted")
	}
	huge := append([]byte(nil), base...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := DecodeRecord(huge, &sub, &out); err == nil {
		t.Fatal("oversized length accepted")
	}
}

// TestRecordZeroAlloc pins the append/decode hot path at zero
// allocations per record once buffers are warm, matching the wire
// codec's contract.
func TestRecordZeroAlloc(t *testing.T) {
	fix := submitFixtures()[2]
	ofix := outcomeFixtures()[1]
	buf := make([]byte, 0, 4096)
	sub := SubmitRecord{
		Items:   make([]int32, 0, 16),
		Reads:   make([]bool, 0, 16),
		NeedsIO: make([]bool, 0, 16),
	}
	var out OutcomeRecord
	encoded := AppendSubmit(nil, &fix)
	oencoded := AppendOutcome(nil, &ofix)

	if n := testing.AllocsPerRun(200, func() {
		buf = AppendSubmit(buf[:0], &fix)
		buf = AppendOutcome(buf, &ofix)
	}); n != 0 {
		t.Fatalf("append allocates %.1f times per record pair", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := DecodeRecord(encoded, &sub, &out); err != nil {
			t.Fatal(err)
		}
		if _, _, err := DecodeRecord(oencoded, &sub, &out); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("decode allocates %.1f times per record pair", n)
	}
}
