package wal

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// FuzzWALRecord feeds arbitrary bytes to the record decoder. The
// decoder must never panic; when it accepts a record, re-encoding the
// decoded form must reproduce the input bytes exactly (the WAL codec
// is canonical down to the checksum, unlike the wire codec's
// payload-level fixed point), and the decoder must consume the whole
// record. The seed corpus covers both record types, every
// optional-field shape, and the corruption shapes recovery meets in
// practice: truncated tails, flipped checksum bytes, lying length
// words.
func FuzzWALRecord(f *testing.F) {
	for _, r := range submitFixtures() {
		f.Add(AppendSubmit(nil, &r))
	}
	for _, r := range outcomeFixtures() {
		f.Add(AppendOutcome(nil, &r))
	}
	whole := AppendSubmit(nil, &SubmitRecord{
		Seq: 42, Items: []int32{5, 6, 7}, Reads: []bool{true, false, true},
		Compute: time.Millisecond, Deadline: time.Second,
	})
	f.Add([]byte{})
	f.Add(whole[:len(whole)/2]) // torn mid-record
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)-1] ^= 0xff // bad checksum
	f.Add(flipped)
	lying := append([]byte(nil), whole...)
	lying[0] = 0xff // length word far past the buffer
	f.Add(lying)
	f.Add(append(append([]byte(nil), whole...), 0xde, 0xad)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		var sub SubmitRecord
		var out OutcomeRecord
		h, n, err := DecodeRecord(data, &sub, &out)
		if err != nil {
			return
		}
		var again []byte
		switch h.Type {
		case RecSubmit:
			again = AppendSubmit(nil, &sub)
		case RecOutcome:
			again = AppendOutcome(nil, &out)
		default:
			t.Fatalf("decoder accepted unknown type %#x", h.Type)
		}
		if !bytes.Equal(again, data[:n]) {
			t.Fatalf("re-encode diverged:\n in  %x\n out %x", data[:n], again)
		}
		// Decoding the re-encoded bytes must agree field-for-field.
		var sub2 SubmitRecord
		var out2 OutcomeRecord
		h2, n2, err := DecodeRecord(again, &sub2, &out2)
		if err != nil || n2 != len(again) || h2 != h {
			t.Fatalf("re-encoded record rejected: %v (n=%d h=%+v)", err, n2, h2)
		}
		if h.Type == RecSubmit && !reflect.DeepEqual(sub, sub2) {
			t.Fatalf("submit round trip diverged:\n %+v\n %+v", sub, sub2)
		}
		if h.Type == RecOutcome && !reflect.DeepEqual(out, out2) {
			t.Fatalf("outcome round trip diverged:\n %+v\n %+v", out, out2)
		}
		// Trailing bytes after a valid record are never silently eaten.
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
	})
}
