package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func openMem(t *testing.T, fs *MemFS, mut func(*Options)) (*Logger, *Recovery) {
	t.Helper()
	opt := Options{FS: fs}
	if mut != nil {
		mut(&opt)
	}
	l, rec, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

// appendPair logs one submit and its outcome, waiting for durability.
func appendPair(t *testing.T, l *Logger, items ...int32) uint64 {
	t.Helper()
	seq, err := l.AppendSubmit(&SubmitRecord{Items: items, Compute: time.Millisecond, Deadline: time.Second})
	if err != nil {
		t.Fatalf("AppendSubmit: %v", err)
	}
	ch := make(chan error, 1)
	if err := l.AppendOutcome(&OutcomeRecord{Seq: seq, State: 3}, func(err error) { ch <- err }); err != nil {
		t.Fatalf("AppendOutcome: %v", err)
	}
	select {
	case err := <-ch:
		if err != nil {
			t.Fatalf("durability callback: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("durability callback never fired")
	}
	return seq
}

func TestLoggerAppendRecover(t *testing.T) {
	fs := NewMemFS()
	l, rec := openMem(t, fs, nil)
	if rec.Records != 0 || len(rec.Unresolved) != 0 {
		t.Fatalf("fresh dir recovery: %+v", rec)
	}

	// Three resolved pairs, then two submits whose outcomes never land.
	var resolved []uint64
	for i := 0; i < 3; i++ {
		resolved = append(resolved, appendPair(t, l, int32(i)))
	}
	var unresolved []uint64
	for i := 0; i < 2; i++ {
		seq, err := l.AppendSubmit(&SubmitRecord{
			Items: []int32{int32(10 + i)}, Reads: []bool{i == 0},
			Compute: 2 * time.Millisecond, Deadline: 30 * time.Millisecond,
			Criticality: i, Class: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		unresolved = append(unresolved, seq)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	st := l.Stats()
	if st.Submits != 5 || st.Outcomes != 3 || st.Unresolved != 2 || st.Failed {
		t.Fatalf("stats: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := l.AppendSubmit(&SubmitRecord{Items: []int32{1}, Compute: 1, Deadline: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}

	l2, rec2 := openMem(t, fs, nil)
	defer l2.Close()
	if rec2.Submits != 5 || rec2.Outcomes != 3 || rec2.Truncated {
		t.Fatalf("recovery: %+v", rec2)
	}
	var got []uint64
	for _, u := range rec2.Unresolved {
		got = append(got, u.Seq)
	}
	if !reflect.DeepEqual(got, unresolved) {
		t.Fatalf("unresolved %v, want %v", got, unresolved)
	}
	if rec2.Unresolved[0].Class != 7 || !rec2.Unresolved[0].Reads[0] {
		t.Fatalf("unresolved payload lost: %+v", rec2.Unresolved[0])
	}
	// Sequence numbering continues after the highest recovered seq.
	if next := l2.NextSeq(); next != resolved[2]+3 {
		t.Fatalf("NextSeq %d, want %d", next, resolved[2]+3)
	}
}

// TestCrashLosesUnsyncedTail: outcomes appended but not yet synced are
// lost by a crash; recovery reports their submissions unresolved.
func TestCrashLosesUnsyncedTail(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, func(o *Options) { o.SyncEvery = time.Hour }) // never auto-sync
	seq1, err := l.AppendSubmit(&SubmitRecord{Items: []int32{1}, Compute: 1, Deadline: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Outcome appended, crash before any sync: ack never fired.
	if err := l.AppendOutcome(&OutcomeRecord{Seq: seq1, State: 3}, nil); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	l.Close() // abandon the stale handle; flush fails against the crashed FS

	l2, rec := openMem(t, fs, nil)
	defer l2.Close()
	if len(rec.Unresolved) != 1 || rec.Unresolved[0].Seq != seq1 {
		t.Fatalf("recovery after crash: %+v", rec)
	}
	if rec.Outcomes != 0 {
		t.Fatalf("unsynced outcome survived crash: %+v", rec)
	}
}

// TestTornTailTruncation: garbage (and a half-written record) after the
// synced prefix is truncated in the final segment; two scans of the
// same log agree bit-identically.
func TestTornTailTruncation(t *testing.T) {
	for _, tail := range [][]byte{
		{0x00},                   // lone short length prefix
		{0xde, 0xad, 0xbe, 0xef}, // length word of garbage
		make([]byte, 64),         // zeros: undersized record length
	} {
		t.Run(fmt.Sprintf("tail-%x", tail[:min(len(tail), 4)]), func(t *testing.T) {
			fs := NewMemFS()
			l, _ := openMem(t, fs, nil)
			appendPair(t, l, 1, 2)
			seqU, err := l.AppendSubmit(&SubmitRecord{Items: []int32{3}, Compute: 1, Deadline: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			l.Close()
			names, _ := fs.List()
			if len(names) != 1 {
				t.Fatalf("segments: %v", names)
			}
			if err := fs.Append(names[0], tail); err != nil {
				t.Fatal(err)
			}

			scan1, err := Scan(fs, nil) // read-only scan notes the tear
			if err != nil {
				t.Fatal(err)
			}
			if !scan1.Truncated || scan1.TruncatedBytes != int64(len(tail)) {
				t.Fatalf("read-only scan: %+v", scan1)
			}

			l2, rec := openMem(t, fs, nil) // repairing open truncates
			l2.Close()
			if !rec.Truncated || rec.TruncatedBytes != int64(len(tail)) {
				t.Fatalf("recovery: %+v", rec)
			}
			if len(rec.Unresolved) != 1 || rec.Unresolved[0].Seq != seqU {
				t.Fatalf("unresolved after tear: %+v", rec)
			}

			// Second recovery of the repaired log: identical modulo the
			// truncation note, bit-identical unresolved set.
			l3, rec2 := openMem(t, fs, nil)
			l3.Close()
			if rec2.Truncated {
				t.Fatalf("tear survived repair: %+v", rec2)
			}
			j1, _ := json.Marshal(rec.Unresolved)
			j2, _ := json.Marshal(rec2.Unresolved)
			if string(j1) != string(j2) || rec.MaxSeq != rec2.MaxSeq || rec.Submits != rec2.Submits {
				t.Fatalf("recovery runs diverge:\n %+v\n %+v", rec, rec2)
			}
		})
	}
}

// TestCorruptMidSegmentFails: corruption before acked records in a
// non-final segment must refuse to open rather than silently drop
// acknowledged work.
func TestCorruptMidSegmentFails(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, func(o *Options) { o.SegmentBytes = 1 }) // rotate every flush
	appendPair(t, l, 1)
	appendPair(t, l, 2)
	appendPair(t, l, 3)
	l.Close()
	names, _ := fs.List()
	if len(names) < 2 {
		t.Fatalf("want multiple segments, got %v", names)
	}
	if err := fs.Corrupt(names[0], 8); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{FS: fs}); err == nil {
		t.Fatal("Open accepted corruption in a non-final segment")
	}
}

func TestSegmentRotationAndRetention(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, func(o *Options) {
		o.SegmentBytes = 1 // every flush rotates
		o.Retain = 2
	})
	for i := 0; i < 10; i++ {
		appendPair(t, l, int32(i))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Rotations == 0 || st.Removed == 0 {
		t.Fatalf("expected rotations and retention removals: %+v", st)
	}
	names, _ := fs.List()
	// retained closed segments + active segment.
	if len(names) > 4 {
		t.Fatalf("retention kept %d segments: %v", len(names), names)
	}
	l.Close()

	// The retained suffix must still recover cleanly.
	l2, rec := openMem(t, fs, nil)
	l2.Close()
	if len(rec.Unresolved) != 0 {
		t.Fatalf("unexpected unresolved after retention: %+v", rec)
	}
}

// TestRetentionHoldsUnresolvedSegments: a segment with an unresolved
// submit survives retention until its outcome lands, even across many
// rotations.
func TestRetentionHoldsUnresolvedSegments(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, func(o *Options) {
		o.SegmentBytes = 1
		o.Retain = 1
	})
	seqOpen, err := l.AppendSubmit(&SubmitRecord{Items: []int32{99}, Compute: 1, Deadline: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	firstSeg, _ := fs.List()
	for i := 0; i < 6; i++ {
		appendPair(t, l, int32(i))
	}
	names, _ := fs.List()
	if names[0] != firstSeg[0] {
		t.Fatalf("segment %s holding unresolved seq %d was deleted: %v", firstSeg[0], seqOpen, names)
	}
	// Resolve it; the segment becomes deletable.
	ch := make(chan error, 1)
	if err := l.AppendOutcome(&OutcomeRecord{Seq: seqOpen, State: 3}, func(e error) { ch <- e }); err != nil {
		t.Fatal(err)
	}
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		appendPair(t, l, int32(50+i))
	}
	names, _ = fs.List()
	if names[0] == firstSeg[0] {
		t.Fatalf("resolved segment %s survived retention: %v", firstSeg[0], names)
	}
	l.Close()
}

// TestGroupCommitBatchesSyncs: with a sync interval, many concurrent
// appends should complete with far fewer fsyncs than records.
func TestGroupCommitBatchesSyncs(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, func(o *Options) { o.SyncEvery = 2 * time.Millisecond })
	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seq, err := l.AppendSubmit(&SubmitRecord{Items: []int32{int32(i)}, Compute: 1, Deadline: 1})
			if err != nil {
				errs <- err
				return
			}
			done := make(chan error, 1)
			if err := l.AppendOutcome(&OutcomeRecord{Seq: seq, State: 3}, func(e error) { done <- e }); err != nil {
				errs <- err
				return
			}
			errs <- <-done
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	st := l.Stats()
	if st.Syncs >= n {
		t.Fatalf("no group commit: %d syncs for %d pairs", st.Syncs, n)
	}
	l.Close()

	l2, rec := openMem(t, fs, nil)
	l2.Close()
	if rec.Submits != n || len(rec.Unresolved) != 0 {
		t.Fatalf("recovery: %+v", rec)
	}
}

// failFile fails Sync while the shared flag is set.
type failFile struct {
	File
	fail *atomic.Bool
}

func (f failFile) Sync() error {
	if f.fail.Load() {
		return errors.New("injected sync failure")
	}
	return f.File.Sync()
}

// TestSyncFailureIsSticky: a sync error fails the pending callbacks and
// every subsequent append.
func TestSyncFailureIsSticky(t *testing.T) {
	fs := NewMemFS()
	var fail atomic.Bool
	l, _ := openMem(t, fs, func(o *Options) {
		o.WrapFile = func(name string, f File) File { return failFile{File: f, fail: &fail} }
	})
	appendPair(t, l, 1) // healthy sync first
	fail.Store(true)
	seq, err := l.AppendSubmit(&SubmitRecord{Items: []int32{2}, Compute: 1, Deadline: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan error, 1)
	if err := l.AppendOutcome(&OutcomeRecord{Seq: seq, State: 3}, func(e error) { ch <- e }); err != nil {
		t.Fatal(err)
	}
	if err := <-ch; err == nil {
		t.Fatal("durability callback got nil after failed sync")
	}
	if _, err := l.AppendSubmit(&SubmitRecord{Items: []int32{3}, Compute: 1, Deadline: 1}); err == nil {
		t.Fatal("append accepted after sticky failure")
	}
	if !l.Stats().Failed {
		t.Fatalf("stats not failed: %+v", l.Stats())
	}
	l.Close()
}
