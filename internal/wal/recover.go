// Recovery: scanning segments back into memory after a restart.
//
// The scan walks segments in ordinal order and decodes records
// front-to-back. The first invalid record in the FINAL segment is a
// torn tail — the batch that was mid-write when the process died — and
// is truncated away together with everything after it (nothing after a
// torn batch was ever acknowledged, because acks wait for fsync). An
// invalid record in any earlier segment means real corruption of
// acknowledged data and fails the scan: silently dropping acked work
// would be worse than refusing to start.
//
// Scanning the same log twice yields bit-identical Recovery results:
// the only mutation (tail truncation) removes exactly the bytes the
// first scan ignored.
package wal

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Recovery summarizes a scan of the log directory.
type Recovery struct {
	// Unresolved holds, in sequence order, every submission with a
	// durable submit record but no outcome record: accepted work whose
	// client never got an answer. With -recover these are replayed.
	Unresolved []SubmitRecord `json:"-"`

	MaxSeq   uint64 `json:"max_seq"`
	Segments int    `json:"segments"`
	Records  int    `json:"records"`
	Submits  int    `json:"submits"`
	Outcomes int    `json:"outcomes"`
	Replayed int    `json:"replayed"` // outcomes carrying FlagReplayed
	Aborted  int    `json:"aborted"`  // outcomes carrying FlagAborted

	Truncated        bool   `json:"truncated"`
	TruncatedSegment string `json:"truncated_segment,omitempty"`
	TruncatedBytes   int64  `json:"truncated_bytes,omitempty"`
}

type unresolvedEntry struct {
	sub SubmitRecord
	ord uint64
}

type scanState struct {
	rec           Recovery
	unresolved    map[uint64]*unresolvedEntry
	segOrds       []uint64
	segSize       map[uint64]int64
	maxOrd        uint64
	lastSubmitSeq uint64
}

// Open scans the log directory, truncates a torn tail, and returns a
// running Logger (sequence numbers continue after the highest seen)
// plus the Recovery describing what the scan found. The logger never
// appends to pre-existing segments; its first flush opens a fresh one.
func Open(o Options) (*Logger, *Recovery, error) {
	opt := o.withDefaults()
	if opt.FS == nil {
		return nil, nil, errors.New("wal: Options.FS is required")
	}
	st, err := scan(opt.FS, true, nil)
	if err != nil {
		return nil, nil, err
	}
	l := newLogger(opt, st.rec.MaxSeq+1, st.maxOrd+1)
	byOrd := make(map[uint64]*segment, len(st.segOrds))
	for _, ord := range st.segOrds {
		seg := &segment{ord: ord, name: segName(ord), size: st.segSize[ord]}
		byOrd[ord] = seg
		l.segs = append(l.segs, seg)
	}
	for seq, e := range st.unresolved {
		seg := byOrd[e.ord]
		seg.outstanding++
		l.bySeq[seq] = seg
	}
	go l.run()
	return l, &st.rec, nil
}

// Scan reads every valid record in the log without repairing anything,
// invoking visit (if non-nil) per record with the decoded header and
// the submit or outcome body selected by the header type. The body
// structs are reused across calls — copy what must outlive the
// callback. A torn tail is reported in the Recovery but left on disk.
func Scan(fsys FS, visit func(Header, *SubmitRecord, *OutcomeRecord) error) (*Recovery, error) {
	st, err := scan(fsys, false, visit)
	if err != nil {
		return nil, err
	}
	return &st.rec, nil
}

func scan(fsys FS, repair bool, visit func(Header, *SubmitRecord, *OutcomeRecord) error) (*scanState, error) {
	names, err := fsys.List()
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var ords []uint64
	for _, name := range names {
		if ord, ok := parseSegName(name); ok {
			ords = append(ords, ord)
		} else if repair && strings.HasSuffix(name, ".tmp") {
			// Leftover from a truncation that died mid-replace.
			fsys.Remove(name)
		}
	}
	sort.Slice(ords, func(i, j int) bool { return ords[i] < ords[j] })

	st := &scanState{
		unresolved: make(map[uint64]*unresolvedEntry),
		segSize:    make(map[uint64]int64),
	}
	var sub SubmitRecord
	var out OutcomeRecord
	for i, ord := range ords {
		name := segName(ord)
		data, err := fsys.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment %s: %w", name, err)
		}
		final := i == len(ords)-1
		off := 0
		for off < len(data) {
			h, n, derr := DecodeRecord(data[off:], &sub, &out)
			if derr != nil {
				if !final {
					return nil, fmt.Errorf("wal: segment %s: invalid record at offset %d in non-final segment: %w", name, off, derr)
				}
				st.rec.Truncated = true
				st.rec.TruncatedSegment = name
				st.rec.TruncatedBytes = int64(len(data) - off)
				if repair {
					if terr := fsys.WriteFileAtomic(name, data[:off]); terr != nil {
						return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", name, terr)
					}
				}
				data = data[:off]
				break
			}
			st.rec.Records++
			if h.Seq > st.rec.MaxSeq {
				st.rec.MaxSeq = h.Seq
			}
			switch h.Type {
			case RecSubmit:
				st.rec.Submits++
				if sub.Seq <= st.lastSubmitSeq {
					return nil, fmt.Errorf("wal: segment %s: submit seq %d at offset %d not increasing (last %d)", name, sub.Seq, off, st.lastSubmitSeq)
				}
				st.lastSubmitSeq = sub.Seq
				st.unresolved[sub.Seq] = &unresolvedEntry{sub: cloneSubmit(&sub), ord: ord}
			case RecOutcome:
				st.rec.Outcomes++
				if out.Replayed() {
					st.rec.Replayed++
				}
				if out.Aborted() {
					st.rec.Aborted++
				}
				delete(st.unresolved, out.Seq)
			}
			if visit != nil {
				if verr := visit(h, &sub, &out); verr != nil {
					return nil, verr
				}
			}
			off += n
		}
		st.segOrds = append(st.segOrds, ord)
		st.segSize[ord] = int64(len(data))
		if ord > st.maxOrd {
			st.maxOrd = ord
		}
	}
	st.rec.Segments = len(st.segOrds)

	seqs := make([]uint64, 0, len(st.unresolved))
	for seq := range st.unresolved {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		st.rec.Unresolved = append(st.rec.Unresolved, st.unresolved[seq].sub)
	}
	return st, nil
}

func cloneSubmit(r *SubmitRecord) SubmitRecord {
	c := *r
	c.Items = append([]int32(nil), r.Items...)
	if r.Reads != nil {
		c.Reads = append([]bool(nil), r.Reads...)
	}
	if r.NeedsIO != nil {
		c.NeedsIO = append([]bool(nil), r.NeedsIO...)
	}
	return c
}
