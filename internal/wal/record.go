// Record codec: every WAL entry is a length-prefixed, versioned,
// checksummed record. The layout mirrors internal/wire's conventions —
// little-endian integers, append-style encoders that never allocate
// beyond growing the destination buffer, canonical strict-length
// decoders — with one addition the network protocol does not need: a
// CRC-32C trailer over everything after the length word, because a log
// read back after a crash cannot trust the bytes the way a TCP stream
// can.
//
// Record layout (all integers little-endian):
//
//	uint32  length   // bytes that follow (12-byte rest-of-header + payload + 4-byte CRC)
//	uint8   version  // record format version, currently 1
//	uint8   type     // RecSubmit or RecOutcome
//	uint16  flags    // Flag* bits (zero for submits)
//	uint64  seq      // submission sequence number, unique per log
//	payload ...
//	uint32  crc      // CRC-32C over version..payload
//
// Decoding is canonical: trailing or missing payload bytes, unknown
// flag bits and checksum mismatches are all errors, so Append∘Decode is
// the identity and a fuzzer cannot find two encodings of one record.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"
)

// RecordVersion is the record format version stamped on every record.
const RecordVersion = 1

// Record types.
const (
	// RecSubmit logs one accepted submission, appended before the
	// submission is acknowledged (append-before-ack).
	RecSubmit = 0x01
	// RecOutcome logs a submission's terminal resolution, appended from
	// the engine's done-hook (or the abort path) and made durable before
	// the client sees the answer.
	RecOutcome = 0x02
)

// Outcome flag bits (Header.Flags on RecOutcome records).
const (
	// FlagReplayed marks an outcome produced by crash-recovery replay
	// rather than the original submission — the at-most-once marker a
	// reconnecting client uses to tell a recovered answer from a
	// duplicate effect.
	FlagReplayed = 1 << 0
	// FlagAborted marks a submission that was answered with an error
	// (drain, shutdown, WAL failure) and never reached a real terminal
	// state. Aborted submissions are resolved — recovery must not replay
	// them, because their clients were told to retry.
	FlagAborted = 1 << 1
)

// Header sizes, mirroring wire's split of the length prefix from the
// length-covered rest.
const (
	recHeaderLen = 16
	recLenPrefix = 4
	recRestLen   = recHeaderLen - recLenPrefix
	recCRCLen    = 4
)

// MaxRecord bounds a single record (header + payload + CRC): a hostile
// or corrupt length prefix cannot balloon recovery memory.
const MaxRecord = 1 << 20

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms this serves from.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrCorrupt covers every way stored bytes can fail
// validation (bad CRC, bad length, unknown version or type, trailing
// bytes); scanners treat it at the log tail as a torn write.
var (
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrShort reports a buffer that ends before the record does — at
	// the log tail this is a torn append, mid-log it is corruption.
	ErrShort = errors.New("wal: truncated record")
)

// Header is a decoded record header.
type Header struct {
	Version uint8
	Type    uint8
	Flags   uint16
	Seq     uint64
}

// SubmitRecord is the decoded form of a RecSubmit payload. It carries
// exactly what replay needs to reconstruct the core.ServiceRequest;
// times are durations (Deadline relative to arrival, as submitted).
type SubmitRecord struct {
	Seq         uint64
	Items       []int32
	Reads       []bool
	NeedsIO     []bool
	Compute     time.Duration
	Deadline    time.Duration
	Criticality int
	Class       int
}

// OutcomeRecord is the decoded form of a RecOutcome payload.
type OutcomeRecord struct {
	Seq      uint64
	Flags    uint16 // FlagReplayed | FlagAborted
	State    uint8  // core.State numeric value
	Missed   bool
	Restarts uint32
	Arrival  time.Duration
	Finish   time.Duration
	Deadline time.Duration
	Response time.Duration
}

// Replayed reports the FlagReplayed bit.
func (o *OutcomeRecord) Replayed() bool { return o.Flags&FlagReplayed != 0 }

// Aborted reports the FlagAborted bit.
func (o *OutcomeRecord) Aborted() bool { return o.Flags&FlagAborted != 0 }

// --- primitive append/consume helpers (little-endian, as in wire) -------

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func getU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}

// appendHeader reserves the record header; sealRecord patches the
// length word and appends the CRC trailer for the same start offset.
func appendHeader(buf []byte, typ uint8, flags uint16, seq uint64) []byte {
	buf = appendU32(buf, 0) // length, patched by sealRecord
	buf = append(buf, RecordVersion, typ)
	buf = appendU16(buf, flags)
	return appendU64(buf, seq)
}

func sealRecord(buf []byte, start int) []byte {
	crc := crc32.Checksum(buf[start+recLenPrefix:], crcTable)
	buf = appendU32(buf, crc)
	n := uint32(len(buf) - start - recLenPrefix)
	buf[start] = byte(n)
	buf[start+1] = byte(n >> 8)
	buf[start+2] = byte(n >> 16)
	buf[start+3] = byte(n >> 24)
	return buf
}

// --- Submit --------------------------------------------------------------

// Payload flag bits inside a submit payload (per-item bitmaps present).
const (
	submitHasReads = 1 << 0
	submitHasIO    = 1 << 1
)

// AppendSubmit appends a complete submit record to buf and returns the
// extended slice.
func AppendSubmit(buf []byte, r *SubmitRecord) []byte {
	start := len(buf)
	buf = appendHeader(buf, RecSubmit, 0, r.Seq)
	buf = appendU64(buf, uint64(r.Compute))
	buf = appendU64(buf, uint64(r.Deadline))
	buf = appendU32(buf, uint32(int32(r.Criticality)))
	buf = appendU32(buf, uint32(int32(r.Class)))
	buf = appendU32(buf, uint32(len(r.Items)))
	var bits uint8
	if r.Reads != nil {
		bits |= submitHasReads
	}
	if r.NeedsIO != nil {
		bits |= submitHasIO
	}
	buf = append(buf, bits)
	for _, it := range r.Items {
		buf = appendU32(buf, uint32(it))
	}
	buf = appendBitmap(buf, r.Reads)
	buf = appendBitmap(buf, r.NeedsIO)
	return sealRecord(buf, start)
}

func appendBitmap(buf []byte, bools []bool) []byte {
	if bools == nil {
		return buf
	}
	var cur uint8
	for i, v := range bools {
		if v {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, cur)
			cur = 0
		}
	}
	if len(bools)%8 != 0 {
		buf = append(buf, cur)
	}
	return buf
}

func bitmapLen(n int) int { return (n + 7) / 8 }

// decodeSubmitPayload decodes a submit payload into r, reusing r's
// slices. Strictly canonical: any length mismatch is ErrCorrupt.
func decodeSubmitPayload(p []byte, r *SubmitRecord) error {
	const fixed = 8 + 8 + 4 + 4 + 4 + 1
	if len(p) < fixed {
		return fmt.Errorf("%w: submit payload %d bytes", ErrCorrupt, len(p))
	}
	r.Compute = time.Duration(getU64(p))
	r.Deadline = time.Duration(getU64(p[8:]))
	r.Criticality = int(int32(getU32(p[16:])))
	r.Class = int(int32(getU32(p[20:])))
	n := int(getU32(p[24:]))
	bits := p[28]
	p = p[fixed:]
	if bits&^uint8(submitHasReads|submitHasIO) != 0 {
		return fmt.Errorf("%w: unknown submit payload bits %#x", ErrCorrupt, bits)
	}
	if n < 0 || n > math.MaxInt32 {
		return fmt.Errorf("%w: submit item count %d", ErrCorrupt, n)
	}
	want := 4 * n
	if bits&submitHasReads != 0 {
		want += bitmapLen(n)
	}
	if bits&submitHasIO != 0 {
		want += bitmapLen(n)
	}
	if len(p) != want {
		return fmt.Errorf("%w: submit payload length %d, want %d for %d items", ErrCorrupt, len(p), want, n)
	}
	r.Items = r.Items[:0]
	for i := 0; i < n; i++ {
		r.Items = append(r.Items, int32(getU32(p[4*i:])))
	}
	p = p[4*n:]
	var err error
	if r.Reads, p, err = decodeBitmap(p, r.Reads, n, bits&submitHasReads != 0); err != nil {
		return err
	}
	if r.NeedsIO, _, err = decodeBitmap(p, r.NeedsIO, n, bits&submitHasIO != 0); err != nil {
		return err
	}
	return nil
}

// emptyBools keeps a decoded present-but-empty bitmap distinguishable
// from an absent one (non-nil slice) without allocating.
var emptyBools = make([]bool, 0)

func decodeBitmap(p []byte, dst []bool, n int, present bool) ([]bool, []byte, error) {
	if !present {
		return nil, p, nil
	}
	if dst == nil {
		dst = emptyBools
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, p[i/8]&(1<<(i%8)) != 0)
	}
	// Canonical encoding: padding bits past n in the final byte are zero.
	if rem := n % 8; rem != 0 && p[n/8]&^(1<<rem-1) != 0 {
		return nil, nil, fmt.Errorf("%w: nonzero bitmap padding", ErrCorrupt)
	}
	return dst, p[bitmapLen(n):], nil
}

// --- Outcome -------------------------------------------------------------

// outcomePayloadLen is the fixed outcome payload size.
const outcomePayloadLen = 1 + 1 + 4 + 4*8

// AppendOutcome appends a complete outcome record to buf.
func AppendOutcome(buf []byte, r *OutcomeRecord) []byte {
	start := len(buf)
	buf = appendHeader(buf, RecOutcome, r.Flags, r.Seq)
	missed := uint8(0)
	if r.Missed {
		missed = 1
	}
	buf = append(buf, r.State, missed)
	buf = appendU32(buf, r.Restarts)
	buf = appendU64(buf, uint64(r.Arrival))
	buf = appendU64(buf, uint64(r.Finish))
	buf = appendU64(buf, uint64(r.Deadline))
	buf = appendU64(buf, uint64(r.Response))
	return sealRecord(buf, start)
}

func decodeOutcomePayload(p []byte, flags uint16, r *OutcomeRecord) error {
	if len(p) != outcomePayloadLen {
		return fmt.Errorf("%w: outcome payload length %d, want %d", ErrCorrupt, len(p), outcomePayloadLen)
	}
	if flags&^uint16(FlagReplayed|FlagAborted) != 0 {
		return fmt.Errorf("%w: unknown outcome flags %#x", ErrCorrupt, flags)
	}
	if p[1] > 1 {
		return fmt.Errorf("%w: outcome missed byte %#x", ErrCorrupt, p[1])
	}
	r.Flags = flags
	r.State = p[0]
	r.Missed = p[1] != 0
	r.Restarts = getU32(p[2:])
	r.Arrival = time.Duration(getU64(p[6:]))
	r.Finish = time.Duration(getU64(p[14:]))
	r.Deadline = time.Duration(getU64(p[22:]))
	r.Response = time.Duration(getU64(p[30:]))
	return nil
}

// --- record-level decode -------------------------------------------------

// DecodeRecord decodes exactly one record from the front of b, reusing
// sub/out's slices, and returns the header and the number of bytes
// consumed. Exactly one of sub/out is filled, selected by the returned
// header type. ErrShort means b ends mid-record (a torn tail when b is
// the end of a segment); every other failure wraps ErrCorrupt.
func DecodeRecord(b []byte, sub *SubmitRecord, out *OutcomeRecord) (Header, int, error) {
	if len(b) < recLenPrefix {
		return Header{}, 0, fmt.Errorf("%w: %d header bytes", ErrShort, len(b))
	}
	n := int(getU32(b))
	if n < recRestLen+recCRCLen || n > MaxRecord {
		return Header{}, 0, fmt.Errorf("%w: record length %d", ErrCorrupt, n)
	}
	if len(b) < recLenPrefix+n {
		return Header{}, 0, fmt.Errorf("%w: %d of %d record bytes", ErrShort, len(b)-recLenPrefix, n)
	}
	rec := b[recLenPrefix : recLenPrefix+n]
	body, crcb := rec[:n-recCRCLen], rec[n-recCRCLen:]
	if crc32.Checksum(body, crcTable) != getU32(crcb) {
		return Header{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	h := Header{
		Version: body[0],
		Type:    body[1],
		Flags:   getU16(body[2:]),
		Seq:     getU64(body[4:]),
	}
	if h.Version != RecordVersion {
		return Header{}, 0, fmt.Errorf("%w: record version %d", ErrCorrupt, h.Version)
	}
	payload := body[recRestLen:]
	switch h.Type {
	case RecSubmit:
		if h.Flags != 0 {
			return Header{}, 0, fmt.Errorf("%w: submit flags %#x", ErrCorrupt, h.Flags)
		}
		sub.Seq = h.Seq
		if err := decodeSubmitPayload(payload, sub); err != nil {
			return Header{}, 0, err
		}
	case RecOutcome:
		out.Seq = h.Seq
		if err := decodeOutcomePayload(payload, h.Flags, out); err != nil {
			return Header{}, 0, err
		}
	default:
		return Header{}, 0, fmt.Errorf("%w: record type %#x", ErrCorrupt, h.Type)
	}
	return h, recLenPrefix + n, nil
}
