// Package report renders experiment results as aligned text tables,
// markdown tables and CSV — the formats used by the CLI tools and by
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v, floats with %.2f.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.2f", x)
		case float32:
			cells[i] = fmt.Sprintf("%.2f", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.AddRow(cells...)
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		w[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	return w
}

// Text renders the table as aligned plain text.
func (t *Table) Text() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes cells containing
// commas, quotes or newlines).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CIn formats a confidence half-width together with the replication count
// behind it, "0.42 (n=10)" — the precision statement attached to every
// figure value, so tables state how many runs back each mean.
func CIn(ci float64, n int) string { return fmt.Sprintf("%.2f (n=%d)", ci, n) }

// F formats a float with two decimals (helper for table rows).
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// F3 formats a float with three decimals.
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }
