package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("Demo", "rate", "miss%")
	t.AddRow("1", "2.50")
	t.AddRow("10", "22.10")
	return t
}

func TestTextAlignment(t *testing.T) {
	out := sample().Text()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "rate") || !strings.Contains(lines[1], "miss%") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("separator = %q", lines[2])
	}
	// Column width fits the widest cell ("22.10").
	if !strings.Contains(lines[3], "1   ") && !strings.Contains(lines[3], "1 ") {
		t.Errorf("row = %q", lines[3])
	}
}

func TestTextWithoutTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow("x")
	if strings.HasPrefix(tbl.Text(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestMarkdown(t *testing.T) {
	out := sample().Markdown()
	if !strings.Contains(out, "**Demo**") {
		t.Error("missing bold title")
	}
	if !strings.Contains(out, "| rate | miss% |") {
		t.Errorf("missing header row:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Error("missing separator row")
	}
	if !strings.Contains(out, "| 10 | 22.10 |") {
		t.Error("missing data row")
	}
}

func TestCSV(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow(`say "hi"`, "x,y")
	out := tbl.CSV()
	want := "a,b\n\"say \"\"hi\"\"\",\"x,y\"\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("only")
	tbl.AddRow("1", "2", "3-dropped")
	if tbl.Rows[0][1] != "" {
		t.Error("missing cell not padded")
	}
	if len(tbl.Rows[1]) != 2 {
		t.Error("extra cell not dropped")
	}
}

func TestAddRowf(t *testing.T) {
	tbl := NewTable("t", "a", "b", "c")
	tbl.AddRowf(1.23456, 7, "x")
	row := tbl.Rows[0]
	if row[0] != "1.23" || row[1] != "7" || row[2] != "x" {
		t.Fatalf("row = %v", row)
	}
}

func TestFormatHelpers(t *testing.T) {
	if F(1.005) != "1.00" && F(1.005) != "1.01" {
		t.Error("F format wrong")
	}
	if F1(2.25) != "2.2" && F1(2.25) != "2.3" {
		t.Error("F1 format wrong")
	}
	if F3(0.1234) != "0.123" {
		t.Errorf("F3 = %q", F3(0.1234))
	}
}

func TestCIn(t *testing.T) {
	if got := CIn(0.4218, 10); got != "0.42 (n=10)" {
		t.Errorf("CIn = %q, want \"0.42 (n=10)\"", got)
	}
	if got := CIn(0, 2); got != "0.00 (n=2)" {
		t.Errorf("CIn = %q, want \"0.00 (n=2)\"", got)
	}
}
