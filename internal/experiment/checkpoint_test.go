package experiment

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestResumeBitIdenticalAfterKill is the acceptance test for
// checkpoint/resume: a sweep killed partway through (context cancellation,
// exactly what SIGINT triggers in rtexp) and then resumed must aggregate
// bit-identically to an uninterrupted sweep — every accumulator of every
// cell compared with reflect.DeepEqual, in both fixed and adaptive mode.
func TestResumeBitIdenticalAfterKill(t *testing.T) {
	for _, mode := range []struct {
		name string
		opt  Options
	}{
		{"fixed", Options{Seeds: 4, Count: 100}},
		{"adaptive", Options{Count: 100, TargetCI: 0.08, MaxSeeds: 6}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			def := adaptiveDef()
			want, err := Run(context.Background(), def, mode.opt)
			if err != nil {
				t.Fatal(err)
			}

			path := filepath.Join(t.TempDir(), "sweep.jsonl")

			// Phase 1: cancel after a handful of completed runs. Serial
			// workers make the kill point deterministic-ish; the guarantee
			// must hold regardless of where it lands.
			ctx, cancel := context.WithCancel(context.Background())
			killOpt := mode.opt
			killOpt.Workers = 1
			killOpt.CheckpointPath = path
			killOpt.Progress = func(done, total int) {
				if done >= 3 {
					cancel()
				}
			}
			if _, err := Run(ctx, def, killOpt); !errors.Is(err, context.Canceled) {
				t.Fatalf("killed sweep returned %v, want context.Canceled", err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(data), `"kind":"run"`) {
				t.Fatal("checkpoint holds no completed runs after the kill")
			}

			// Phase 2: resume and finish.
			resumeOpt := mode.opt
			resumeOpt.CheckpointPath = path
			resumeOpt.Resume = true
			got, err := Run(context.Background(), def, resumeOpt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Agg, got.Agg) {
				t.Fatal("resumed aggregates differ from uninterrupted sweep")
			}
			if !reflect.DeepEqual(want.Converged, got.Converged) {
				t.Fatal("resumed convergence flags differ from uninterrupted sweep")
			}
		})
	}
}

// TestResumeOfCompleteCheckpointRunsNothing: resuming a finished sweep
// replays everything and schedules zero new runs.
func TestResumeOfCompleteCheckpointRunsNothing(t *testing.T) {
	def := adaptiveDef()
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	opt := Options{Seeds: 2, Count: 60, CheckpointPath: path}
	want, err := Run(context.Background(), def, opt)
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	opt.Resume = true
	// Count executed (non-replayed) work via Progress deltas: the first
	// callback reports every replayed run at once, so any later increase
	// means a fresh simulation ran.
	newRuns := 0
	firstDone := -1
	opt.Progress = func(done, total int) {
		if firstDone < 0 {
			firstDone = done
		}
		if done > firstDone {
			newRuns++
		}
	}
	got, err := Run(context.Background(), def, opt)
	if err != nil {
		t.Fatal(err)
	}
	if newRuns != 0 {
		t.Errorf("full resume executed %d new runs, want 0", newRuns)
	}
	if !reflect.DeepEqual(want.Agg, got.Agg) {
		t.Fatal("full resume changed aggregates")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The resume appends exactly one more header and no run records.
	if wantLen := len(before) + countHeaderBytes(t, def, opt); len(after) != wantLen {
		t.Errorf("checkpoint grew by %d bytes on full resume, want %d (one header)",
			len(after)-len(before), wantLen-len(before))
	}
}

func countHeaderBytes(t *testing.T, def Definition, opt Options) int {
	t.Helper()
	path := filepath.Join(t.TempDir(), "probe.jsonl")
	head := headerFor(def, opt, 2, 0)
	w, err := openCheckpoint(path, head)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return len(data)
}

// TestFreshRunRefusesExistingCheckpoint: without Resume, a checkpoint that
// already holds this definition's records is an error, not silent reuse.
func TestFreshRunRefusesExistingCheckpoint(t *testing.T) {
	def := adaptiveDef()
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	opt := Options{Seeds: 2, Count: 60, CheckpointPath: path}
	if _, err := Run(context.Background(), def, opt); err != nil {
		t.Fatal(err)
	}
	_, err := Run(context.Background(), def, opt)
	if err == nil || !strings.Contains(err.Error(), "resume") {
		t.Fatalf("fresh run on existing checkpoint: err = %v, want a resume-or-remove error", err)
	}
}

// TestResumeRefusesDifferentOptions: the header pins every option that
// affects results; resuming under a different schedule is an error.
func TestResumeRefusesDifferentOptions(t *testing.T) {
	def := adaptiveDef()
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	if _, err := Run(context.Background(), def, Options{Seeds: 2, Count: 60, CheckpointPath: path}); err != nil {
		t.Fatal(err)
	}
	_, err := Run(context.Background(), def, Options{Seeds: 3, Count: 60, CheckpointPath: path, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "different options") {
		t.Fatalf("resume with different seeds: err = %v, want different-options error", err)
	}
	_, err = Run(context.Background(), def, Options{Seeds: 2, Count: 50, CheckpointPath: path, Resume: true})
	if err == nil || !strings.Contains(err.Error(), "different options") {
		t.Fatalf("resume with different count: err = %v, want different-options error", err)
	}
}

// TestResumeMissingFileStartsFresh: -resume against a not-yet-created
// checkpoint is not an error; the sweep simply starts from scratch.
func TestResumeMissingFileStartsFresh(t *testing.T) {
	def := adaptiveDef()
	path := filepath.Join(t.TempDir(), "never-written.jsonl")
	r, err := Run(context.Background(), def, Options{Seeds: 2, Count: 60, CheckpointPath: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Agg[0][0].N() != 2 {
		t.Errorf("n = %d, want 2", r.Agg[0][0].N())
	}
}

// TestResumeToleratesTruncatedFinalLine: a process killed mid-write leaves
// a partial last line; resume must drop it and redo that run.
func TestResumeToleratesTruncatedFinalLine(t *testing.T) {
	def := adaptiveDef()
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	opt := Options{Seeds: 3, Count: 80, CheckpointPath: path}
	want, err := Run(context.Background(), def, opt)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through its final record.
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	opt.Resume = true
	got, err := Run(context.Background(), def, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Agg, got.Agg) {
		t.Fatal("resume after truncation changed aggregates")
	}
}

// TestResumeRejectsCorruptMiddle: corruption anywhere but the final line is
// an error — silently skipping records would skew aggregates.
func TestResumeRejectsCorruptMiddle(t *testing.T) {
	def := adaptiveDef()
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	opt := Options{Seeds: 2, Count: 60, CheckpointPath: path}
	if _, err := Run(context.Background(), def, opt); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = "{garbage\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	opt.Resume = true
	if _, err := Run(context.Background(), def, opt); err == nil {
		t.Fatal("corrupt mid-file record did not fail the resume")
	}
}

// TestCheckpointSharedAcrossDefinitions: records of several definitions may
// share one file (rtexp -exp all); each loader ignores the others' lines.
func TestCheckpointSharedAcrossDefinitions(t *testing.T) {
	defA := adaptiveDef()
	defB := adaptiveDef()
	defB.ID = "adaptive-test-b"
	path := filepath.Join(t.TempDir(), "shared.jsonl")
	opt := Options{Seeds: 2, Count: 60, CheckpointPath: path}
	wantA, err := Run(context.Background(), defA, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := Run(context.Background(), defB, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Resume = true
	gotA, err := Run(context.Background(), defA, opt)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := Run(context.Background(), defB, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantA.Agg, gotA.Agg) || !reflect.DeepEqual(wantB.Agg, gotB.Agg) {
		t.Fatal("shared checkpoint resume changed aggregates")
	}
}
