package experiment

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/plot"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Standard variant builders.

func mmVariant(p core.PolicyKind, mutate func(*core.Config, float64)) func(float64, int64) core.Config {
	return func(x float64, seed int64) core.Config {
		cfg := core.MainMemoryConfig(p, seed)
		mutate(&cfg, x)
		return cfg
	}
}

func diskVariant(p core.PolicyKind, mutate func(*core.Config, float64)) func(float64, int64) core.Config {
	return func(x float64, seed int64) core.Config {
		cfg := core.DiskConfig(p, seed)
		mutate(&cfg, x)
		return cfg
	}
}

func setRate(c *core.Config, x float64)   { c.Workload.ArrivalRate = x }
func setDBSize(c *core.Config, x float64) { c.Workload.DBSize = int(x) }

func highVarianceRate(c *core.Config, x float64) {
	c.Workload.Classes = workload.HighVariance().Classes
	c.Workload.ArrivalRate = x
}

// predictWorkload configures the conflict-prediction ablation: two CPUs
// (so commits observe partially-executed peers and the statistics tables
// fill) under an expensive recovery regime — the setting where pricing
// conflicts by their observed rate can actually move the penalty term.
// The prediction knobs mirror the tuner convergence regression in
// internal/core (w starts at the policy default; CCA-T tunes from there).
func predictWorkload(pol core.PolicyKind) func(float64, int64) core.Config {
	return mmVariant(pol, func(c *core.Config, x float64) {
		c.Workload.ArrivalRate = x
		c.NumCPUs = 2
		c.AbortCost = 40 * time.Millisecond
		c.RecoveryProportionalFactor = 2
		if pol == core.CCAP || pol == core.CCAT {
			c.Predict = core.DefaultPredictConfig()
			c.Predict.FeedbackWindow = 100
			c.Predict.TunerStep = 0.5
			c.Predict.TunerMax = 8
		}
	})
}

// conditionalWorkload configures the decision-point ablation: sparse claim
// sets where branch refinement can change scheduling decisions.
func conditionalWorkload(pessimistic bool) func(*core.Config, float64) {
	return func(c *core.Config, x float64) {
		c.Workload.ArrivalRate = x
		c.Workload.DBSize = 80
		c.Workload.UpdatesMean = 6
		c.Workload.UpdatesStd = 2
		c.Workload.DiskAccessProb = 0.25
		c.Workload.DecisionPoints = true
		c.PessimisticAnalysis = pessimistic
	}
}

// Generic renderers.

// curveTable renders one metric for every variant across the sweep, with
// 95% confidence half-widths and the replication count behind each mean
// (which varies per cell under adaptive precision).
func curveTable(title, xLabel string, metric string, pick func(*metrics.Aggregate) *stats.Accumulator) func(*Definition, *Result) *report.Table {
	return func(def *Definition, r *Result) *report.Table {
		cols := []string{xLabel}
		for _, v := range def.Variants {
			cols = append(cols, v.Name+" "+metric, "±95% (n)")
		}
		t := report.NewTable(title, cols...)
		for xi, x := range def.Xs {
			row := []string{trimFloat(x)}
			for vi := range def.Variants {
				acc := pick(r.Agg[xi][vi])
				row = append(row, report.F(acc.Mean()), report.CIn(acc.CI95(), acc.N()))
			}
			t.AddRow(row...)
		}
		return t
	}
}

// improvementTable renders the paper's improvement metric of variant 1
// (CCA) over variant 0 (EDF-HP) in miss percent and mean lateness.
func improvementTable(title, xLabel string) func(*Definition, *Result) *report.Table {
	return func(def *Definition, r *Result) *report.Table {
		t := report.NewTable(title, xLabel, "miss% improvement", "lateness improvement")
		for xi, x := range def.Xs {
			base, cand := r.Summary(xi, 0), r.Summary(xi, 1)
			imp := metrics.ImprovementOver(base, cand)
			t.AddRow(trimFloat(x), report.F(imp.MissPercent), report.F(imp.MeanLateness))
		}
		return t
	}
}

// curveChart renders the same data as curveTable as an ASCII chart.
func curveChart(title, xLabel, yLabel string, pick func(*metrics.Aggregate) *stats.Accumulator) func(*Definition, *Result) *plot.Chart {
	return func(def *Definition, r *Result) *plot.Chart {
		c := &plot.Chart{Title: title, XLabel: xLabel, YLabel: yLabel, Xs: def.Xs}
		for vi, v := range def.Variants {
			ys := make([]float64, len(def.Xs))
			for xi := range def.Xs {
				ys[xi] = pick(r.Agg[xi][vi]).Mean()
			}
			c.Series = append(c.Series, plot.Series{Name: v.Name, Ys: ys})
		}
		return c
	}
}

// improvementChart charts the improvement of variant 1 over variant 0.
func improvementChart(title, xLabel string) func(*Definition, *Result) *plot.Chart {
	return func(def *Definition, r *Result) *plot.Chart {
		c := &plot.Chart{Title: title, XLabel: xLabel, YLabel: "improvement %", Xs: def.Xs}
		miss := make([]float64, len(def.Xs))
		late := make([]float64, len(def.Xs))
		for xi := range def.Xs {
			imp := metrics.ImprovementOver(r.Summary(xi, 0), r.Summary(xi, 1))
			miss[xi] = imp.MissPercent
			late[xi] = imp.MeanLateness
		}
		c.Series = []plot.Series{
			{Name: "miss% improvement", Ys: miss},
			{Name: "lateness improvement", Ys: late},
		}
		return c
	}
}

// curveFigure bundles a curve table and its chart.
func curveFigure(id, figTitle, tableTitle, xLabel, metric string, pick func(*metrics.Aggregate) *stats.Accumulator) Figure {
	return Figure{
		ID:     id,
		Title:  figTitle,
		Render: curveTable(tableTitle, xLabel, metric, pick),
		Plot:   curveChart(tableTitle, xLabel, metric, pick),
	}
}

// improvementFigure bundles an improvement table and its chart.
func improvementFigure(id, figTitle, tableTitle, xLabel string) Figure {
	return Figure{
		ID:     id,
		Title:  figTitle,
		Render: improvementTable(tableTitle, xLabel),
		Plot:   improvementChart(tableTitle, xLabel),
	}
}

// classTable renders per-compute-class miss percentages for every variant
// (used by the high-variance experiment to show which class suffers).
func classTable(title, xLabel string) func(*Definition, *Result) *report.Table {
	return func(def *Definition, r *Result) *report.Table {
		// Discover the class set from the first point.
		classes := []int{}
		for c := range r.Agg[0][0].ClassMiss {
			classes = append(classes, c)
		}
		sort.Ints(classes)
		cols := []string{xLabel}
		for _, v := range def.Variants {
			for _, c := range classes {
				cols = append(cols, fmt.Sprintf("%s c%d miss%%", v.Name, c))
			}
		}
		t := report.NewTable(title, cols...)
		for xi, x := range def.Xs {
			row := []string{trimFloat(x)}
			for vi := range def.Variants {
				for _, c := range classes {
					acc := r.Agg[xi][vi].ClassMiss[c]
					if acc == nil {
						row = append(row, "-")
						continue
					}
					row = append(row, report.F(acc.Mean()))
				}
			}
			t.AddRow(row...)
		}
		return t
	}
}

func missAcc(a *metrics.Aggregate) *stats.Accumulator     { return &a.MissPercent }
func latenessAcc(a *metrics.Aggregate) *stats.Accumulator { return &a.MeanLatenessMs }
func restartsAcc(a *metrics.Aggregate) *stats.Accumulator { return &a.RestartsPerTxn }
func rejectedAcc(a *metrics.Aggregate) *stats.Accumulator { return &a.Rejected }

func trimFloat(x float64) string {
	if x == float64(int(x)) {
		return fmt.Sprintf("%d", int(x))
	}
	return fmt.Sprintf("%.2g", x)
}

func seq(from, to, step float64) []float64 {
	var xs []float64
	for x := from; x <= to+1e-9; x += step {
		xs = append(xs, x)
	}
	return xs
}

// All returns every experiment definition: the paper's Figures 4 and 5
// (grouped by sweep) plus the extension ablations.
func All() []Definition {
	edfVsCCAmm := []Variant{
		{Name: "EDF-HP", Configure: mmVariant(core.EDFHP, setRate)},
		{Name: "CCA", Configure: mmVariant(core.CCA, setRate)},
	}
	edfVsCCAdisk := []Variant{
		{Name: "EDF-HP", Configure: diskVariant(core.EDFHP, setRate)},
		{Name: "CCA", Configure: diskVariant(core.CCA, setRate)},
	}

	return []Definition{
		{
			ID:       "mm-rate",
			Title:    "Main memory: effect of arrival rate (paper §4.1, Figures 4.a-4.c)",
			XLabel:   "arrival rate (tr/s)",
			Xs:       seq(1, 10, 1),
			Seeds:    10,
			Variants: edfVsCCAmm,
			Figures: []Figure{
				curveFigure("4a", "Figure 4.a — miss percent, EDF-HP vs CCA (main memory)",
					"Figure 4.a — miss percent (main memory)", "rate", "miss%", missAcc),
				improvementFigure("4b", "Figure 4.b — improvement of CCA over EDF-HP (main memory)",
					"Figure 4.b — improvement of CCA over EDF-HP (%)", "rate"),
				curveFigure("4c", "Figure 4.c — restarts per transaction (main memory)",
					"Figure 4.c — restarts per transaction (main memory)", "rate", "restarts/txn", restartsAcc),
				curveFigure("4lat", "Mean lateness, EDF-HP vs CCA (main memory; supports Figure 4.b)",
					"Mean lateness (ms, main memory)", "rate", "lateness", latenessAcc),
			},
		},
		{
			ID:     "mm-variance",
			Title:  "Main memory: high execution-time variance (paper §4.2, Figures 4.d-4.e)",
			XLabel: "arrival rate (tr/s)",
			Xs:     seq(0.2, 1.8, 0.2),
			Seeds:  10,
			Variants: []Variant{
				{Name: "EDF-HP", Configure: mmVariant(core.EDFHP, highVarianceRate)},
				{Name: "CCA", Configure: mmVariant(core.CCA, highVarianceRate)},
			},
			Figures: []Figure{
				curveFigure("4d", "Figure 4.d — miss percent with 0.4/4/40 ms update classes",
					"Figure 4.d — miss percent (high variance)", "rate", "miss%", missAcc),
				improvementFigure("4e", "Figure 4.e — improvement with high variance",
					"Figure 4.e — improvement of CCA over EDF-HP (%)", "rate"),
				{ID: "4class", Title: "Per-class miss percent (extension: which update-time class suffers)",
					Render: classTable("Per-class miss percent (high variance; classes 0.4/4/40 ms)", "rate")},
			},
		},
		{
			ID:     "mm-dbsize",
			Title:  "Main memory: effect of database size at 10 tr/s (paper §4.3, Figure 4.f)",
			XLabel: "database size",
			Xs:     seq(100, 1000, 100),
			Seeds:  10,
			Variants: []Variant{
				{Name: "EDF-HP", Configure: mmVariant(core.EDFHP, func(c *core.Config, x float64) { setDBSize(c, x); c.Workload.ArrivalRate = 10 })},
				{Name: "CCA", Configure: mmVariant(core.CCA, func(c *core.Config, x float64) { setDBSize(c, x); c.Workload.ArrivalRate = 10 })},
			},
			Figures: []Figure{
				curveFigure("4f", "Figure 4.f — miss percent vs database size (main memory, rate 10)",
					"Figure 4.f — miss percent vs DB size (rate 10)", "DBsize", "miss%", missAcc),
			},
		},
		{
			ID:     "mm-weight",
			Title:  "Main memory: stability of penalty-weight (paper §4.4, Figure 5.a)",
			XLabel: "penalty-weight",
			Xs:     []float64{0, 0.5, 1, 2, 5, 10, 15, 20},
			Seeds:  10,
			Variants: []Variant{
				{Name: "5 TPS", Configure: mmVariant(core.CCA, func(c *core.Config, w float64) { c.PenaltyWeight = w; c.Workload.ArrivalRate = 5 })},
				{Name: "8 TPS", Configure: mmVariant(core.CCA, func(c *core.Config, w float64) { c.PenaltyWeight = w; c.Workload.ArrivalRate = 8 })},
			},
			Figures: []Figure{
				curveFigure("5a", "Figure 5.a — miss percent vs penalty-weight (main memory, 5 and 8 tr/s)",
					"Figure 5.a — miss percent vs penalty-weight (main memory)", "w", "miss%", missAcc),
			},
		},
		{
			ID:       "disk-rate",
			Title:    "Disk resident: effect of arrival rate (paper §5.1, Figures 5.b-5.d)",
			XLabel:   "arrival rate (tr/s)",
			Xs:       seq(1, 7, 1),
			Seeds:    30,
			Variants: edfVsCCAdisk,
			Figures: []Figure{
				curveFigure("5b", "Figure 5.b — miss percent, EDF-HP vs CCA (disk resident)",
					"Figure 5.b — miss percent (disk resident)", "rate", "miss%", missAcc),
				curveFigure("5c", "Figure 5.c — restarts per transaction (disk resident)",
					"Figure 5.c — restarts per transaction (disk resident)", "rate", "restarts/txn", restartsAcc),
				improvementFigure("5d", "Figure 5.d — improvement of CCA over EDF-HP (disk resident)",
					"Figure 5.d — improvement of CCA over EDF-HP (%)", "rate"),
				curveFigure("5lat", "Mean lateness, EDF-HP vs CCA (disk; supports Figure 5.d)",
					"Mean lateness (ms, disk resident)", "rate", "lateness", latenessAcc),
			},
		},
		{
			ID:     "disk-dbsize",
			Title:  "Disk resident: effect of database size at 4 tr/s (paper §5.2, Figure 5.e)",
			XLabel: "database size",
			Xs:     seq(100, 600, 100),
			Seeds:  30,
			Variants: []Variant{
				{Name: "EDF-HP", Configure: diskVariant(core.EDFHP, func(c *core.Config, x float64) { setDBSize(c, x); c.Workload.ArrivalRate = 4 })},
				{Name: "CCA", Configure: diskVariant(core.CCA, func(c *core.Config, x float64) { setDBSize(c, x); c.Workload.ArrivalRate = 4 })},
			},
			Figures: []Figure{
				curveFigure("5e", "Figure 5.e — miss percent vs database size (disk resident, rate 4)",
					"Figure 5.e — miss percent vs DB size (disk, rate 4)", "DBsize", "miss%", missAcc),
			},
		},
		{
			ID:     "disk-weight",
			Title:  "Disk resident: stability of penalty-weight (paper §5.3, Figure 5.f)",
			XLabel: "penalty-weight",
			Xs:     []float64{0, 0.5, 1, 2, 5, 10, 15, 20},
			Seeds:  30,
			Variants: []Variant{
				{Name: "4 TPS", Configure: diskVariant(core.CCA, func(c *core.Config, w float64) { c.PenaltyWeight = w; c.Workload.ArrivalRate = 4 })},
			},
			Figures: []Figure{
				curveFigure("5f", "Figure 5.f — miss percent vs penalty-weight (disk resident, 4 tr/s)",
					"Figure 5.f — miss percent vs penalty-weight (disk)", "w", "miss%", missAcc),
			},
		},

		// --- extension ablations (DESIGN.md §4) -----------------------
		{
			ID:     "ablation-policies",
			Title:  "Ablation: every implemented policy on the main-memory base workload",
			XLabel: "arrival rate (tr/s)",
			Xs:     []float64{2, 4, 6, 8, 10},
			Seeds:  10,
			Variants: []Variant{
				{Name: "CCA", Configure: mmVariant(core.CCA, setRate)},
				{Name: "EDF-HP", Configure: mmVariant(core.EDFHP, setRate)},
				{Name: "EDF-WP", Configure: mmVariant(core.EDFWP, setRate)},
				{Name: "LSF-HP", Configure: mmVariant(core.LSFHP, setRate)},
				{Name: "EDF-CR", Configure: mmVariant(core.EDFCR, setRate)},
				{Name: "AED", Configure: mmVariant(core.AED, setRate)},
				{Name: "PCP", Configure: mmVariant(core.PCP, setRate)},
				{Name: "FCFS", Configure: mmVariant(core.FCFS, setRate)},
			},
			Figures: []Figure{
				curveFigure("ab-pol-miss", "Ablation — miss percent across policies",
					"Ablation — miss percent across policies (main memory)", "rate", "miss%", missAcc),
				curveFigure("ab-pol-late", "Ablation — mean lateness across policies",
					"Ablation — mean lateness across policies (ms)", "rate", "lateness", latenessAcc),
			},
		},
		{
			ID:     "ablation-recovery",
			Title:  "Ablation: recovery cost proportional to executed work (paper §6)",
			XLabel: "proportional factor",
			Xs:     []float64{0, 0.5, 1, 2, 4},
			Seeds:  10,
			Variants: []Variant{
				{Name: "EDF-HP", Configure: mmVariant(core.EDFHP, func(c *core.Config, x float64) { c.RecoveryProportionalFactor = x; c.Workload.ArrivalRate = 8 })},
				{Name: "CCA", Configure: mmVariant(core.CCA, func(c *core.Config, x float64) { c.RecoveryProportionalFactor = x; c.Workload.ArrivalRate = 8 })},
			},
			Figures: []Figure{
				{ID: "ab-rec-miss", Title: "Ablation — miss percent vs recovery cost factor",
					Render: curveTable("Ablation — miss percent vs proportional recovery factor (rate 8)", "factor", "miss%", missAcc)},
				{ID: "ab-rec-imp", Title: "Ablation — CCA improvement vs recovery cost factor",
					Render: improvementTable("Ablation — improvement of CCA over EDF-HP (%)", "factor")},
			},
		},
		{
			ID:     "ablation-mp",
			Title:  "Ablation: multiprocessor extension (paper §6 future work)",
			XLabel: "CPUs",
			Xs:     []float64{1, 2, 4},
			Seeds:  10,
			// Load scales with the CPU count; the database is enlarged to
			// 4000 objects because on the 30-object base database almost
			// every pair of transactions conflicts, so CCA's
			// compatibility rule (correctly) serialises execution and
			// extra CPUs cannot help — multiprocessor parallelism only
			// exists under low-to-moderate contention (pairwise conflict
			// probability ≈ 1-(1-20/4000)^20 ≈ 10%).
			Variants: []Variant{
				{Name: "EDF-HP", Configure: mmVariant(core.EDFHP, func(c *core.Config, x float64) {
					c.NumCPUs = int(x)
					c.Workload.DBSize = 4000
					c.Workload.ArrivalRate = 8 * x
				})},
				{Name: "CCA", Configure: mmVariant(core.CCA, func(c *core.Config, x float64) {
					c.NumCPUs = int(x)
					c.Workload.DBSize = 4000
					c.Workload.ArrivalRate = 8 * x
				})},
			},
			Figures: []Figure{
				{ID: "ab-mp-miss", Title: "Ablation — miss percent vs CPU count (rate = 8 tr/s per CPU, 4000-object DB)",
					Render: curveTable("Ablation — miss percent vs CPUs (rate 8/CPU, DB 4000)", "CPUs", "miss%", missAcc)},
			},
		},
		{
			ID:     "ablation-readlocks",
			Title:  "Ablation: shared read locks (paper §6 future work)",
			XLabel: "read fraction",
			Xs:     []float64{0, 0.25, 0.5, 0.75},
			Seeds:  10,
			Variants: []Variant{
				{Name: "EDF-HP", Configure: mmVariant(core.EDFHP, func(c *core.Config, x float64) { c.Workload.ReadFraction = x; c.Workload.ArrivalRate = 8 })},
				{Name: "CCA", Configure: mmVariant(core.CCA, func(c *core.Config, x float64) { c.Workload.ReadFraction = x; c.Workload.ArrivalRate = 8 })},
			},
			Figures: []Figure{
				{ID: "ab-read-miss", Title: "Ablation — miss percent vs read fraction",
					Render: curveTable("Ablation — miss percent vs read fraction (rate 8)", "read frac", "miss%", missAcc)},
			},
		},
		{
			ID:     "ablation-conditional",
			Title:  "Ablation: conditionally-conflicting transactions (decision points; paper §6's unsimulated case)",
			XLabel: "arrival rate (tr/s)",
			Xs:     seq(10, 20, 2),
			Seeds:  15,
			// Sparse claim sets (6 updates over 80 objects, heavier IO)
			// are where refinement can matter: a transaction's untaken
			// branch is then a meaningful fraction of its claim.
			Variants: []Variant{
				{Name: "CCA pre-analysis", Configure: diskVariant(core.CCA, conditionalWorkload(false))},
				{Name: "CCA pessimistic", Configure: diskVariant(core.CCA, conditionalWorkload(true))},
				{Name: "EDF-HP", Configure: diskVariant(core.EDFHP, conditionalWorkload(false))},
			},
			Figures: []Figure{
				curveFigure("ab-cond-miss", "Ablation — miss percent with decision-point workloads",
					"Ablation — conditional conflicts: refined vs pessimistic analysis (disk)", "rate", "miss%", missAcc),
				curveFigure("ab-cond-late", "Ablation — mean lateness with decision-point workloads",
					"Ablation — conditional conflicts: mean lateness (ms)", "rate", "lateness", latenessAcc),
			},
		},
		{
			ID:     "ablation-multidisk",
			Title:  "Ablation: striping the database over multiple disks",
			XLabel: "arrival rate (tr/s)",
			Xs:     seq(3, 9, 1),
			Seeds:  15,
			Variants: []Variant{
				{Name: "CCA 1-disk", Configure: diskVariant(core.CCA, setRate)},
				{Name: "CCA 2-disk", Configure: diskVariant(core.CCA, func(c *core.Config, x float64) { setRate(c, x); c.NumDisks = 2 })},
				{Name: "EDF-HP 2-disk", Configure: diskVariant(core.EDFHP, func(c *core.Config, x float64) { setRate(c, x); c.NumDisks = 2 })},
			},
			Figures: []Figure{
				curveFigure("ab-disk2-miss", "Ablation — miss percent with 1 vs 2 disks",
					"Ablation — miss percent, 1 vs 2 disks (disk resident)", "rate", "miss%", missAcc),
			},
		},
		{
			ID:     "ablation-firm",
			Title:  "Ablation: firm deadlines (late transactions dropped; Haritsa's model)",
			XLabel: "arrival rate (tr/s)",
			Xs:     seq(4, 12, 2),
			Seeds:  10,
			Variants: []Variant{
				{Name: "EDF-HP", Configure: mmVariant(core.EDFHP, func(c *core.Config, x float64) { setRate(c, x); c.FirmDeadlines = true })},
				{Name: "CCA", Configure: mmVariant(core.CCA, func(c *core.Config, x float64) { setRate(c, x); c.FirmDeadlines = true })},
				{Name: "AED", Configure: mmVariant(core.AED, func(c *core.Config, x float64) { setRate(c, x); c.FirmDeadlines = true })},
			},
			Figures: []Figure{
				curveFigure("ab-firm-miss", "Ablation — miss percent (dropped+late) under firm deadlines",
					"Ablation — miss percent under firm deadlines (main memory)", "rate", "miss%", missAcc),
			},
		},
		{
			ID:     "ablation-overload",
			Title:  "Ablation: overload control past saturation (admission robustness extension)",
			XLabel: "arrival rate (tr/s)",
			Xs:     seq(10, 30, 5),
			Seeds:  10,
			// The main-memory base workload saturates one CPU around
			// 12.5 tr/s; past that, admitting everything lets the live
			// set grow without bound and every policy's miss percent
			// races to 100. Shedding infeasible arrivals trades a few
			// certain rejections for a backlog the CPU can still serve.
			Variants: []Variant{
				{Name: "EDF-HP", Configure: mmVariant(core.EDFHP, setRate)},
				{Name: "CCA", Configure: mmVariant(core.CCA, setRate)},
				{Name: "CCA+reject", Configure: mmVariant(core.CCA, func(c *core.Config, x float64) {
					setRate(c, x)
					c.Admission = core.AdmissionConfig{Mode: core.RejectInfeasible}
				})},
			},
			Figures: []Figure{
				curveFigure("ab-over-miss", "Ablation — miss percent past saturation, with and without admission control",
					"Ablation — overload: miss percent (rejected counts as missed)", "rate", "miss%", missAcc),
				{ID: "ab-over-rej", Title: "Ablation — rejected transactions per run under admission control",
					Render: curveTable("Ablation — overload: rejections per run", "rate", "rejected", rejectedAcc)},
				curveFigure("ab-over-late", "Ablation — mean lateness of served transactions past saturation",
					"Ablation — overload: mean lateness of commits (ms)", "rate", "lateness", latenessAcc),
			},
		},
		{
			ID:     "ablation-predict",
			Title:  "Ablation: conflict-prediction policies (CCA-P) and the self-tuning weight (CCA-T)",
			XLabel: "arrival rate (tr/s)",
			Xs:     seq(8, 14, 2),
			Seeds:  10,
			Variants: []Variant{
				{Name: "EDF-HP", Configure: predictWorkload(core.EDFHP)},
				{Name: "CCA", Configure: predictWorkload(core.CCA)},
				{Name: "CCA-P", Configure: predictWorkload(core.CCAP)},
				{Name: "CCA-T", Configure: predictWorkload(core.CCAT)},
			},
			Figures: []Figure{
				curveFigure("ab-pred-miss", "Ablation — miss percent, static vs predicted vs tuned penalty",
					"Ablation — conflict prediction: miss percent (2 CPUs, costly recovery)", "rate", "miss%", missAcc),
				curveFigure("ab-pred-restarts", "Ablation — restarts per transaction with conflict prediction",
					"Ablation — conflict prediction: restarts per transaction", "rate", "restarts/txn", restartsAcc),
				curveFigure("ab-pred-late", "Ablation — mean lateness with conflict prediction",
					"Ablation — conflict prediction: mean lateness (ms)", "rate", "lateness", latenessAcc),
			},
		},
		{
			ID:     "ablation-diskqueue",
			Title:  "Ablation: priority (EDF) disk queueing instead of FCFS",
			XLabel: "arrival rate (tr/s)",
			Xs:     seq(2, 7, 1),
			Seeds:  15,
			// Under CCA the IOwait rule keeps the disk queue essentially
			// empty (at most the primary's own access), so the queue
			// discipline is irrelevant there; the comparison is made
			// under EDF-HP, whose noncontributing executions do queue
			// concurrent disk requests.
			Variants: []Variant{
				{Name: "EDFHP/FCFS-disk", Configure: diskVariant(core.EDFHP, setRate)},
				{Name: "EDFHP/prio-disk", Configure: diskVariant(core.EDFHP, func(c *core.Config, x float64) {
					setRate(c, x)
					c.DiskDiscipline = 1 // disk.Priority
				})},
			},
			Figures: []Figure{
				{ID: "ab-dq-miss", Title: "Ablation — miss percent, FCFS vs priority disk queue (EDF-HP)",
					Render: curveTable("Ablation — EDF-HP miss percent, FCFS vs priority disk queue", "rate", "miss%", missAcc)},
			},
		},
	}
}

// ByID returns the definition whose ID matches, or whose figure list
// contains the given figure ID ("4a" or "fig4a").
func ByID(id string) (Definition, bool) {
	if len(id) > 3 && id[:3] == "fig" {
		id = id[3:]
	}
	for _, d := range All() {
		if d.ID == id {
			return d, true
		}
		for _, f := range d.Figures {
			if f.ID == id {
				return d, true
			}
		}
	}
	return Definition{}, false
}

// Table1 renders the paper's Table 1 (main-memory base parameters) from the
// canonical configuration.
func Table1() *report.Table {
	cfg := core.MainMemoryConfig(core.CCA, 1)
	return paramTable("Table 1 — base parameters (main memory)", cfg)
}

// Table2 renders the paper's Table 2 (disk-resident base parameters).
func Table2() *report.Table {
	cfg := core.DiskConfig(core.CCA, 1)
	t := paramTable("Table 2 — base parameters (disk resident)", cfg)
	t.AddRow("Disk access time (ms)", fmt.Sprintf("%v", cfg.Workload.DiskAccessTime.Milliseconds()))
	t.AddRow("Disk access probability", "1/10")
	return t
}

func paramTable(title string, cfg core.Config) *report.Table {
	w := cfg.Workload
	t := report.NewTable(title, "Parameter", "Value")
	t.AddRow("Transaction type", fmt.Sprintf("%d", w.TxnTypes))
	t.AddRow("Update per transaction (mean, std)", fmt.Sprintf("(%.0f, %.0f)", w.UpdatesMean, w.UpdatesStd))
	t.AddRow("Computation/update (ms)", fmt.Sprintf("%v", w.ComputePerUpdate.Milliseconds()))
	t.AddRow("Database size", fmt.Sprintf("%d", w.DBSize))
	t.AddRow("Min-slack (% of runtime)", fmt.Sprintf("%.0f%%", 100*w.MinSlack))
	t.AddRow("Max-slack (% of runtime)", fmt.Sprintf("%.0f%%", 100*w.MaxSlack))
	t.AddRow("Abort cost (ms)", fmt.Sprintf("%v", cfg.AbortCost.Milliseconds()))
	t.AddRow("Weight of penalty of conflict", fmt.Sprintf("%.0f", cfg.PenaltyWeight))
	t.AddRow("CPU capacity (tr/s, no aborts)", report.F(w.CPUCapacity()))
	return t
}
