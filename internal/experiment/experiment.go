// Package experiment defines and runs the paper's evaluation: one
// Definition per parameter sweep, each rendering the tables/series of the
// figures it reproduces (Figures 4.a–4.f and 5.a–5.f, plus the Table 1/2
// parameter listings and this repository's extension ablations).
//
// Runs fan out over a goroutine worker pool — the simulator itself is
// single-threaded and deterministic per seed, so experiments use every core
// while results stay exactly reproducible.
package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/plot"
	"repro/internal/report"
)

// Variant is one curve of a figure: a name ("EDF-HP", "CCA", "5 TPS") and a
// config builder evaluated at each sweep point.
type Variant struct {
	Name      string
	Configure func(x float64, seed int64) core.Config
}

// Figure renders one paper figure (or table) from a completed sweep.
type Figure struct {
	ID     string
	Title  string
	Render func(def *Definition, r *Result) *report.Table
	// Plot, when set, renders the figure as an ASCII chart in addition
	// to the table (the terminal equivalent of the paper's graphs).
	Plot func(def *Definition, r *Result) *plot.Chart
}

// Definition is one parameter sweep reproducing one or more figures.
type Definition struct {
	ID       string
	Title    string
	XLabel   string
	Xs       []float64
	Seeds    int
	Variants []Variant
	Figures  []Figure
}

// Result holds the aggregated metrics of a sweep: Agg[xi][vi] aggregates
// Seeds runs of variant vi at sweep point xi.
type Result struct {
	Def *Definition
	Agg [][]*metrics.Aggregate
}

// Options tune a run without changing what it measures.
type Options struct {
	// Seeds overrides the definition's seed count (0 keeps it).
	Seeds int
	// Count overrides the per-run transaction count (0 keeps the
	// config's; used by tests and benchmarks to shrink runs).
	Count int
	// Workers bounds the worker pool (0 = GOMAXPROCS).
	Workers int
	// Progress, if set, receives (done, total) after every finished run.
	Progress func(done, total int)
}

// Run executes the sweep and aggregates per (point, variant).
func Run(def Definition, opt Options) (*Result, error) {
	seeds := def.Seeds
	if opt.Seeds > 0 {
		seeds = opt.Seeds
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct {
		xi, vi int
		seed   int64
	}
	type outcome struct {
		job
		res metrics.Result
		err error
	}

	var jobs []job
	for xi := range def.Xs {
		for vi := range def.Variants {
			for s := 1; s <= seeds; s++ {
				jobs = append(jobs, job{xi: xi, vi: vi, seed: int64(s)})
			}
		}
	}

	jobCh := make(chan job)
	outCh := make(chan outcome, len(jobs))
	cancel := make(chan struct{}) // closed on the first error: stops the feeder
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				cfg := def.Variants[j.vi].Configure(def.Xs[j.xi], j.seed)
				if opt.Count > 0 {
					cfg.Workload.Count = opt.Count
				}
				var res metrics.Result
				e, err := core.New(cfg)
				if err == nil {
					res, err = e.Run()
				}
				outCh <- outcome{job: j, res: res, err: err}
			}
		}()
	}
	go func() {
		defer close(jobCh)
		for _, j := range jobs {
			select {
			case jobCh <- j:
			case <-cancel:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outCh)
	}()

	// Collect by seed so aggregation order is deterministic. On a run error
	// the feeder is cancelled and outCh drained to completion — every worker
	// and the feeder exit before Run returns, leaking nothing.
	bySeed := make([][][]metrics.Result, len(def.Xs))
	for xi := range bySeed {
		bySeed[xi] = make([][]metrics.Result, len(def.Variants))
		for vi := range bySeed[xi] {
			bySeed[xi][vi] = make([]metrics.Result, seeds)
		}
	}
	var firstErr error
	done := 0
	for o := range outCh {
		if o.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("experiment %s: %s at %s=%v seed %d: %w",
					def.ID, def.Variants[o.vi].Name, def.XLabel, def.Xs[o.xi], o.seed, o.err)
				close(cancel)
			}
			continue
		}
		bySeed[o.xi][o.vi][o.seed-1] = o.res
		done++
		if opt.Progress != nil {
			opt.Progress(done, len(jobs))
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	r := &Result{Def: &def, Agg: make([][]*metrics.Aggregate, len(def.Xs))}
	for xi := range def.Xs {
		r.Agg[xi] = make([]*metrics.Aggregate, len(def.Variants))
		for vi := range def.Variants {
			agg := &metrics.Aggregate{}
			for s := 0; s < seeds; s++ {
				agg.Add(bySeed[xi][vi][s])
			}
			r.Agg[xi][vi] = agg
		}
	}
	return r, nil
}

// Summary returns the across-seed mean result at a sweep point/variant.
func (r *Result) Summary(xi, vi int) metrics.Result { return r.Agg[xi][vi].Summary() }

// Tables renders every figure of the definition.
func (r *Result) Tables() []*report.Table {
	out := make([]*report.Table, 0, len(r.Def.Figures))
	for _, f := range r.Def.Figures {
		out = append(out, f.Render(r.Def, r))
	}
	return out
}

// Charts renders every figure that defines a chart.
func (r *Result) Charts() []*plot.Chart {
	var out []*plot.Chart
	for _, f := range r.Def.Figures {
		if f.Plot != nil {
			out = append(out, f.Plot(r.Def, r))
		}
	}
	return out
}
