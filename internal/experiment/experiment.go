// Package experiment defines and runs the paper's evaluation: one
// Definition per parameter sweep, each rendering the tables/series of the
// figures it reproduces (Figures 4.a–4.f and 5.a–5.f, plus the Table 1/2
// parameter listings and this repository's extension ablations).
//
// Run is an orchestration layer, not a fixed fan-out. Per (point, variant)
// cell it either runs a fixed seed count (the paper's methodology) or, in
// adaptive mode (Options.TargetCI > 0), keeps scheduling deterministic
// per-seed runs until the 95% confidence half-width of the primary metric
// falls below a relative target or a seed cap is hit. Runs fan out over a
// goroutine worker pool — the simulator itself is single-threaded and
// deterministic per seed, so experiments use every core while aggregates
// stay exactly reproducible: results are always folded in seed order, so
// the worker count, the adaptive schedule and checkpoint/resume cannot
// change a single bit of the output.
//
// Long sweeps survive interruption: with Options.CheckpointPath set every
// completed run is appended to a JSONL checkpoint, and a resumed sweep
// (Options.Resume) replays the file to skip finished runs, aggregating
// bit-identically to an uninterrupted one. Cancellation via the context
// drains the worker pool without goroutine leaks and checkpoints every
// in-flight run before returning.
//
// Runs also survive their own failures: a panicking run (or one whose
// engine fails, e.g. an oracle violation under Options.Oracle) is retried
// up to Options.MaxRetries times and then recorded as a failed seed — in
// the checkpoint and in Result.Failures — instead of aborting the whole
// sweep. Only deterministic errors (an invalid configuration, an Inspect
// rejection) remain fatal: retrying them cannot help, and Inspect is how
// invariant tests report violations.
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/plot"
	"repro/internal/report"
	"repro/internal/stats"
)

// Variant is one curve of a figure: a name ("EDF-HP", "CCA", "5 TPS") and a
// config builder evaluated at each sweep point.
type Variant struct {
	Name      string
	Configure func(x float64, seed int64) core.Config
}

// Figure renders one paper figure (or table) from a completed sweep.
type Figure struct {
	ID     string
	Title  string
	Render func(def *Definition, r *Result) *report.Table
	// Plot, when set, renders the figure as an ASCII chart in addition
	// to the table (the terminal equivalent of the paper's graphs).
	Plot func(def *Definition, r *Result) *plot.Chart
}

// Definition is one parameter sweep reproducing one or more figures.
type Definition struct {
	ID       string
	Title    string
	XLabel   string
	Xs       []float64
	Seeds    int
	Variants []Variant
	Figures  []Figure
}

// Result holds the aggregated metrics of a sweep: Agg[xi][vi] aggregates
// the completed seed runs of variant vi at sweep point xi (exactly the
// fixed seed count, or the adaptive schedule's final n for the cell).
type Result struct {
	Def *Definition
	Agg [][]*metrics.Aggregate
	// Converged[xi][vi] reports whether the cell met the adaptive
	// precision target (always true for fixed-seed runs; false for cells
	// stopped by the MaxSeeds cap).
	Converged [][]bool
	// Failures lists every seed run that exhausted its retries (ordered
	// by point, variant, seed). A failed seed is excluded from its cell's
	// aggregate; the sweep as a whole still succeeds.
	Failures []RunFailure
}

// RunFailure describes one seed run that failed even after retries.
type RunFailure struct {
	Xi      int
	X       float64
	Vi      int
	Variant string
	Seed    int64
	// Attempts is the total number of executions spent (1 + retries).
	Attempts int
	Message  string
}

// Options tune a run without changing what it measures.
type Options struct {
	// Seeds overrides the definition's seed count (0 keeps it). In
	// adaptive mode this is the initial batch per cell.
	Seeds int
	// Count overrides the per-run transaction count (0 keeps the
	// config's; used by tests and benchmarks to shrink runs).
	Count int
	// Workers bounds the worker pool (0 = GOMAXPROCS).
	Workers int
	// Progress, if set, receives (done, total) after every finished or
	// replayed run. In adaptive mode total grows as cells extend their
	// seed schedule. Called from Run's goroutine.
	Progress func(done, total int)

	// TargetCI, when > 0, enables adaptive replication: each cell keeps
	// adding seeds until the CI95 half-width of the primary metric is at
	// most TargetCI × |mean| (e.g. 0.05 = 5% of the mean), or MaxSeeds
	// runs have been spent. A cell whose metric is exactly zero across
	// all seeds counts as converged.
	TargetCI float64
	// MaxSeeds caps the per-cell seed count in adaptive mode
	// (0 = 4× the initial batch).
	MaxSeeds int
	// Metric picks the accumulator whose confidence interval drives
	// adaptive convergence (nil = miss percent).
	Metric func(*metrics.Aggregate) *stats.Accumulator

	// MaxRetries is how many extra attempts a failed run (a panic, or an
	// engine error such as an oracle or watchdog violation) gets before
	// its seed is recorded as failed and the sweep moves on without it
	// (0 = fail on the first attempt). Deterministic errors — an invalid
	// configuration, an Inspect rejection — are never retried: they are
	// fatal, because retrying cannot change them and Inspect is how
	// invariant tests report violations.
	MaxRetries int
	// Oracle attaches the runtime safety oracle (core.EnableOracle) to
	// every engine before it runs; a detected violation fails the run
	// (and is retried/recorded like any other run failure).
	Oracle bool
	// Fault, when non-zero, overrides every run's fault-injection plan
	// (core.Config.Fault). Variants that set their own plan keep it when
	// this is zero.
	Fault fault.Plan
	// Admission, when its Mode is set, overrides every run's admission
	// controller (core.Config.Admission).
	Admission core.AdmissionConfig

	// CheckpointPath, when set, streams one JSONL record per completed
	// run to this file so an interrupted sweep can resume. A fresh run
	// refuses a file that already holds records for this definition;
	// pass Resume to replay them instead.
	CheckpointPath string
	// Resume replays CheckpointPath before running, skipping finished
	// runs. The resumed sweep aggregates bit-identically to an
	// uninterrupted one. A missing checkpoint file is not an error
	// (the sweep simply starts from scratch).
	Resume bool

	// Instrument, if set, is called after each engine is built and
	// before it runs (e.g. to attach a trace recorder). Called
	// concurrently from worker goroutines.
	Instrument func(xi, vi int, seed int64, e *core.Engine)
	// Inspect, if set, is called after each run completes; a non-nil
	// error cancels the sweep. Called concurrently from worker
	// goroutines.
	Inspect func(xi, vi int, seed int64, e *core.Engine, res metrics.Result) error
	// CellDone, if set, receives each cell's final state (seed count and
	// whether it met the precision target) as soon as the cell finishes.
	// Called from Run's goroutine.
	CellDone func(xi, vi, n int, converged bool)
}

// metric returns the convergence accumulator selector.
func (o *Options) metric() func(*metrics.Aggregate) *stats.Accumulator {
	if o.Metric != nil {
		return o.Metric
	}
	return func(a *metrics.Aggregate) *stats.Accumulator { return &a.MissPercent }
}

// job identifies one seed run of one cell. attempt counts prior failed
// executions of the same run (0 on the first try).
type job struct {
	xi, vi  int
	seed    int64
	attempt int
}

type outcome struct {
	job
	res metrics.Result
	// failure is the retryable failure message ("" on success): a panic
	// or an engine/oracle/watchdog error.
	failure string
	// err is a fatal error that aborts the sweep (config or Inspect).
	err error
}

// cellState tracks one (point, variant) cell's adaptive schedule.
type cellState struct {
	// res holds completed results by seed (1-based); it may hold seeds
	// beyond goal when a checkpoint replays a longer previous schedule.
	res map[int]metrics.Result
	// failed holds seeds whose run failed even after retries; a failed
	// seed counts as finished for scheduling but is excluded from fold.
	failed map[int]RunFailure
	// goal is the number of seeds currently requested for the cell.
	goal int
	// final marks the cell finished (converged or capped).
	final bool
	// converged reports whether the precision target was met.
	converged bool
}

// completeUpTo reports whether seeds 1..n are all finished (completed or
// recorded as failed).
func (c *cellState) completeUpTo(n int) bool {
	for s := 1; s <= n; s++ {
		if _, ok := c.res[s]; ok {
			continue
		}
		if _, ok := c.failed[s]; !ok {
			return false
		}
	}
	return true
}

// fold aggregates seeds 1..n in seed order (the canonical fold order that
// makes every execution bit-identical). Failed seeds are skipped: their
// runs produced no result.
func (c *cellState) fold(n int) *metrics.Aggregate {
	agg := &metrics.Aggregate{}
	for s := 1; s <= n; s++ {
		if res, ok := c.res[s]; ok {
			agg.Add(res)
		}
	}
	return agg
}

// finishedSeed reports whether the seed already has a recorded outcome
// (a completed result or a final failure).
func (c *cellState) finishedSeed(s int) bool {
	if _, ok := c.res[s]; ok {
		return true
	}
	_, ok := c.failed[s]
	return ok
}

// converged reports whether the accumulator meets the relative CI target.
func converged(acc *stats.Accumulator, target float64) bool {
	return acc.N() >= 2 && acc.RelCI95() <= target
}

// Run executes the sweep and aggregates per (point, variant). The context
// cancels the sweep: no further runs are scheduled, in-flight runs drain
// (and are checkpointed) and Run returns the context's error.
func Run(ctx context.Context, def Definition, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	seeds := def.Seeds
	if opt.Seeds > 0 {
		seeds = opt.Seeds
	}
	if seeds <= 0 {
		return nil, fmt.Errorf("experiment %s: seed count %d <= 0", def.ID, seeds)
	}
	adaptive := opt.TargetCI > 0
	maxSeeds := 0
	if adaptive {
		if seeds < 2 {
			seeds = 2 // a confidence interval needs at least two runs
		}
		maxSeeds = opt.MaxSeeds
		if maxSeeds <= 0 {
			maxSeeds = 4 * seeds
		}
		if seeds > maxSeeds {
			seeds = maxSeeds
		}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	metric := opt.metric()

	nx, nv := len(def.Xs), len(def.Variants)
	if nx == 0 || nv == 0 {
		return nil, fmt.Errorf("experiment %s: no sweep points or variants", def.ID)
	}
	cells := make([]cellState, nx*nv)
	for i := range cells {
		cells[i] = cellState{res: make(map[int]metrics.Result), failed: make(map[int]RunFailure), goal: seeds}
	}

	// Checkpoint: replay previous progress, then open for appending.
	var ckpt *checkpointWriter
	if opt.CheckpointPath != "" {
		head := headerFor(def, opt, seeds, maxSeeds)
		replayed, sawPrior, err := loadCheckpoint(opt.CheckpointPath, def, head)
		if err != nil {
			return nil, err
		}
		if sawPrior && !opt.Resume {
			return nil, fmt.Errorf("experiment %s: checkpoint %s already holds this experiment's runs (resume or remove it)",
				def.ID, opt.CheckpointPath)
		}
		for key, res := range replayed.runs {
			cells[key.xi*nv+key.vi].res[key.seed] = res
		}
		for key, f := range replayed.failures {
			cells[key.xi*nv+key.vi].failed[key.seed] = f
		}
		ckpt, err = openCheckpoint(opt.CheckpointPath, head)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
	}

	// Seed the schedule: per-cell jobs for the initial goal, counting
	// replayed runs as done, then advance each cell (replay may complete
	// it, or in adaptive mode extend it).
	var pending []job
	done, total := 0, 0
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
		pending = nil
	}
	progress := func() {
		if opt.Progress != nil {
			opt.Progress(done, total)
		}
	}
	// advance drives a cell's state machine at deterministic points: only
	// when every seed up to the current goal has completed does it decide
	// to finish or extend, so the final schedule is a pure function of
	// the results, never of worker timing.
	advance := func(idx int) {
		c := &cells[idx]
		for !c.final && firstErr == nil && c.completeUpTo(c.goal) {
			if !adaptive {
				c.final, c.converged = true, true
			} else if acc := metric(c.fold(c.goal)); converged(acc, opt.TargetCI) {
				c.final, c.converged = true, true
			} else if c.goal >= maxSeeds {
				c.final, c.converged = true, false
			}
			if c.final {
				if opt.CellDone != nil {
					opt.CellDone(idx/nv, idx%nv, c.goal, c.converged)
				}
				return
			}
			// Extend by half the current schedule (at least one seed).
			next := c.goal + c.goal/2
			if next <= c.goal {
				next = c.goal + 1
			}
			if next > maxSeeds {
				next = maxSeeds
			}
			for s := c.goal + 1; s <= next; s++ {
				total++
				if c.finishedSeed(s) {
					done++
				} else {
					pending = append(pending, job{xi: idx / nv, vi: idx % nv, seed: int64(s)})
				}
			}
			c.goal = next
		}
	}
	for idx := range cells {
		c := &cells[idx]
		for s := 1; s <= c.goal; s++ {
			total++
			if c.finishedSeed(s) {
				done++
			} else {
				pending = append(pending, job{xi: idx / nv, vi: idx % nv, seed: int64(s)})
			}
		}
	}
	for idx := range cells {
		advance(idx)
	}
	if done > 0 {
		progress()
	}

	// Worker pool. Workers only ever read def/opt and own their engine;
	// all bookkeeping happens on this goroutine's collector loop.
	jobCh := make(chan job)
	outCh := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				res, failure, err := runOne(&def, &opt, j)
				outCh <- outcome{job: j, res: res, failure: failure, err: err}
			}
		}()
	}

	handle := func(o outcome) {
		if o.err != nil {
			fail(fmt.Errorf("experiment %s: %s at %s=%v seed %d: %w",
				def.ID, def.Variants[o.vi].Name, def.XLabel, def.Xs[o.xi], o.seed, o.err))
			return
		}
		idx := o.xi*nv + o.vi
		if o.failure != "" {
			if o.attempt < opt.MaxRetries {
				// Retry the same seed; a deterministic engine will fail
				// again, but transient causes (a panicking Instrument
				// hook, an environmental hiccup) get their chance. On
				// cancellation or a fatal error the retry is simply
				// never dispatched.
				retry := o.job
				retry.attempt++
				pending = append(pending, retry)
				return
			}
			f := RunFailure{
				Xi: o.xi, X: def.Xs[o.xi], Vi: o.vi, Variant: def.Variants[o.vi].Name,
				Seed: o.seed, Attempts: o.attempt + 1, Message: o.failure,
			}
			cells[idx].failed[int(o.seed)] = f
			if ckpt != nil {
				if err := ckpt.recordFailure(def, f); err != nil {
					fail(err)
				}
			}
			done++
			progress()
			advance(idx)
			return
		}
		cells[idx].res[int(o.seed)] = o.res
		if ckpt != nil {
			if err := ckpt.record(def, o); err != nil {
				fail(err)
			}
		}
		done++
		progress()
		advance(idx)
	}

	// Collector: dispatch pending jobs and fold outcomes until the
	// schedule drains, an error occurs, or the context cancels. In-flight
	// runs always drain before Run returns — nothing leaks, and every
	// completed run reaches the checkpoint.
	inflight := 0
	canceled := false
	ctxDone := ctx.Done()
	for inflight > 0 || (len(pending) > 0 && !canceled && firstErr == nil) {
		var sendCh chan job
		var next job
		if len(pending) > 0 && !canceled && firstErr == nil {
			sendCh, next = jobCh, pending[0]
		}
		select {
		case sendCh <- next:
			pending = pending[1:]
			inflight++
		case o := <-outCh:
			inflight--
			handle(o)
		case <-ctxDone:
			canceled = true
			ctxDone = nil
		}
	}
	close(jobCh)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if canceled {
		return nil, fmt.Errorf("experiment %s: %w", def.ID, ctx.Err())
	}

	r := &Result{
		Def:       &def,
		Agg:       make([][]*metrics.Aggregate, nx),
		Converged: make([][]bool, nx),
	}
	for xi := 0; xi < nx; xi++ {
		r.Agg[xi] = make([]*metrics.Aggregate, nv)
		r.Converged[xi] = make([]bool, nv)
		for vi := 0; vi < nv; vi++ {
			c := &cells[xi*nv+vi]
			r.Agg[xi][vi] = c.fold(c.goal)
			r.Converged[xi][vi] = c.converged
			// Failures in canonical (point, variant, seed) order so the
			// report is deterministic regardless of worker timing.
			if len(c.failed) > 0 {
				seeds := make([]int, 0, len(c.failed))
				for s := range c.failed {
					seeds = append(seeds, s)
				}
				sort.Ints(seeds)
				for _, s := range seeds {
					r.Failures = append(r.Failures, c.failed[s])
				}
			}
		}
	}
	return r, nil
}

// runOne executes a single seed run on a worker goroutine. It returns
// either a result, a retryable failure message (a panic anywhere between
// engine construction and run completion, or an engine error such as an
// oracle or watchdog violation), or a fatal error (an invalid
// configuration, an Inspect rejection) that aborts the sweep.
func runOne(def *Definition, opt *Options, j job) (metrics.Result, string, error) {
	cfg := def.Variants[j.vi].Configure(def.Xs[j.xi], j.seed)
	if opt.Count > 0 {
		cfg.Workload.Count = opt.Count
	}
	if !opt.Fault.Zero() {
		cfg.Fault = opt.Fault
	}
	if opt.Admission.Mode != core.AdmitAll {
		cfg.Admission = opt.Admission
	}
	e, err := core.New(cfg)
	if err != nil {
		return metrics.Result{}, "", err
	}
	if opt.Oracle {
		e.EnableOracle()
	}
	var res metrics.Result
	var runErr error
	// One bad seed must not take down a multi-hour sweep: recover panics
	// from the instrumentation hook and the engine itself and fold them
	// into the retry/failure path. The message excludes the stack so
	// reruns of a deterministic panic produce identical failure records.
	func() {
		defer func() {
			if p := recover(); p != nil {
				runErr = fmt.Errorf("panic: %v", p)
			}
		}()
		if opt.Instrument != nil {
			opt.Instrument(j.xi, j.vi, j.seed, e)
		}
		res, runErr = e.Run()
	}()
	if runErr != nil {
		return metrics.Result{}, runErr.Error(), nil
	}
	if opt.Inspect != nil {
		if err := opt.Inspect(j.xi, j.vi, j.seed, e, res); err != nil {
			return metrics.Result{}, "", err
		}
	}
	return res, "", nil
}

// Summary returns the across-seed mean result at a sweep point/variant.
func (r *Result) Summary(xi, vi int) metrics.Result { return r.Agg[xi][vi].Summary() }

// Tables renders every figure of the definition.
func (r *Result) Tables() []*report.Table {
	out := make([]*report.Table, 0, len(r.Def.Figures))
	for _, f := range r.Def.Figures {
		out = append(out, f.Render(r.Def, r))
	}
	return out
}

// Charts renders every figure that defines a chart.
func (r *Result) Charts() []*plot.Chart {
	var out []*plot.Chart
	for _, f := range r.Def.Figures {
		if f.Plot != nil {
			out = append(out, f.Plot(r.Def, r))
		}
	}
	return out
}
