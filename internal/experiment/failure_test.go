package experiment

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// crashOn returns an Instrument hook that panics on one (xi, vi, seed)
// cell, n times in a row (counting attempts), then lets it run normally.
func crashOn(xi, vi int, seed int64, times int) func(int, int, int64, *core.Engine) {
	hits := 0
	return func(cxi, cvi int, cseed int64, _ *core.Engine) {
		if cxi == xi && cvi == vi && cseed == seed && hits < times {
			hits++
			panic("injected crash")
		}
	}
}

// TestPanicRecordedAsFailure: a run that panics on every attempt is
// recorded as a failure with the repro seed, the sweep still returns, and
// the cell aggregates the surviving seeds.
func TestPanicRecordedAsFailure(t *testing.T) {
	def := findDef(t, "mm-rate")
	def.Xs = []float64{6}
	r, err := Run(context.Background(), def, Options{
		Seeds: 3, Count: 60, MaxRetries: 1,
		Instrument: crashOn(0, 1, 2, 99),
	})
	if err != nil {
		t.Fatalf("panicking seed aborted the sweep: %v", err)
	}
	if len(r.Failures) != 1 {
		t.Fatalf("failures = %+v, want exactly one", r.Failures)
	}
	f := r.Failures[0]
	if f.Xi != 0 || f.Vi != 1 || f.Seed != 2 {
		t.Fatalf("failure at wrong cell: %+v", f)
	}
	if f.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2 (1 + MaxRetries)", f.Attempts)
	}
	if !strings.Contains(f.Message, "injected crash") {
		t.Fatalf("failure message lost the panic value: %q", f.Message)
	}
	if f.Variant != def.Variants[1].Name || f.X != 6 {
		t.Fatalf("failure metadata wrong: %+v", f)
	}
	// The crashed cell still aggregates its two healthy seeds; the other
	// variant keeps all three.
	if got := r.Agg[0][1].N(); got != 2 {
		t.Fatalf("failed cell aggregated %d seeds, want 2", got)
	}
	if got := r.Agg[0][0].N(); got != 3 {
		t.Fatalf("healthy cell aggregated %d seeds, want 3", got)
	}
}

// TestRetrySalvagesTransientPanic: a panic that clears before the retry
// budget runs out produces a normal result and no failure record.
func TestRetrySalvagesTransientPanic(t *testing.T) {
	def := findDef(t, "mm-rate")
	def.Xs = []float64{6}
	r, err := Run(context.Background(), def, Options{
		Seeds: 2, Count: 60, MaxRetries: 2,
		Instrument: crashOn(0, 0, 1, 1), // crash once, succeed on retry
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Failures) != 0 {
		t.Fatalf("transient panic left failures: %+v", r.Failures)
	}
	if got := r.Agg[0][0].N(); got != 2 {
		t.Fatalf("aggregated %d seeds, want 2", got)
	}

	// Same crash without a retry budget is a failure.
	r, err = Run(context.Background(), def, Options{
		Seeds: 2, Count: 60,
		Instrument: crashOn(0, 0, 1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Failures) != 1 || r.Failures[0].Attempts != 1 {
		t.Fatalf("failures = %+v, want one single-attempt failure", r.Failures)
	}
}

// TestFailureDeterministicAcrossWorkers: failure records and the surviving
// aggregates are identical whether the sweep runs serially or in parallel.
func TestFailureDeterministicAcrossWorkers(t *testing.T) {
	def := findDef(t, "mm-rate")
	def.Xs = []float64{4, 8}
	mk := func(workers int) *Result {
		r, err := Run(context.Background(), def, Options{
			Seeds: 3, Count: 60, Workers: workers,
			Instrument: crashOn(1, 0, 2, 99),
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(1), mk(runtime.GOMAXPROCS(0))
	if !reflect.DeepEqual(a.Failures, b.Failures) {
		t.Fatalf("worker count changed failure records:\n%+v\n%+v", a.Failures, b.Failures)
	}
	if !reflect.DeepEqual(a.Agg, b.Agg) {
		t.Fatal("worker count changed surviving aggregates")
	}
}

// TestFailureCheckpointedAndResumable: a failed run writes a "failed"
// checkpoint record; resuming skips both finished and failed seeds and
// reconstructs the same failure list without re-running anything.
func TestFailureCheckpointedAndResumable(t *testing.T) {
	def := findDef(t, "mm-rate")
	def.Xs = []float64{6}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	opt := Options{
		Seeds: 3, Count: 60, CheckpointPath: path, MaxRetries: 1,
		Instrument: crashOn(0, 0, 1, 99),
	}
	first, err := Run(context.Background(), def, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Failures) != 1 {
		t.Fatalf("failures = %+v, want one", first.Failures)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sawFailed bool
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec struct {
			Kind  string `json:"kind"`
			Seed  int64  `json:"seed"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad checkpoint line %q: %v", line, err)
		}
		if rec.Kind == "failed" {
			sawFailed = true
			if rec.Seed != 1 || !strings.Contains(rec.Error, "injected crash") {
				t.Fatalf("failed record wrong: %q", line)
			}
		}
	}
	if !sawFailed {
		t.Fatalf("no failed record in checkpoint:\n%s", data)
	}

	// Resume with an Instrument that would crash *any* run: nothing may
	// execute, and the failure must come back from the checkpoint.
	resumeOpt := opt
	resumeOpt.Resume = true
	resumeOpt.Instrument = func(int, int, int64, *core.Engine) { panic("resume re-ran a run") }
	second, err := Run(context.Background(), def, resumeOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Failures, second.Failures) {
		t.Fatalf("resume changed failures:\n%+v\n%+v", first.Failures, second.Failures)
	}
	if !reflect.DeepEqual(first.Agg, second.Agg) {
		t.Fatal("resume changed aggregates")
	}
}

// TestFailedSeedRetriedOnFreshResume: a "failed" record is replayed as
// finished — but if the run later succeeds (same path, new attempt via a
// fresh sweep after the bug is fixed), the "run" record supersedes it.
func TestRunRecordSupersedesFailed(t *testing.T) {
	def := findDef(t, "mm-rate")
	def.Xs = []float64{6}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	// First sweep: seed 1 fails and is checkpointed as such.
	opt := Options{Seeds: 2, Count: 60, CheckpointPath: path, Instrument: crashOn(0, 0, 1, 99)}
	if _, err := Run(context.Background(), def, opt); err != nil {
		t.Fatal(err)
	}
	// Append a healthy "run" record for the same seed, as a later repaired
	// process would.
	healthy, err := Run(context.Background(), def, Options{Seeds: 2, Count: 60})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := openCheckpoint(path, checkpointHeader{})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute seed 1's result by running the cell directly. (The zero
	// header this writer appends has an empty Def, so replay skips it.)
	rec := outcome{job: job{xi: 0, vi: 0, seed: 1}, res: seedResult(t, def, 1)}
	if err := ck.record(def, rec); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	resumed, err := Run(context.Background(), def, Options{
		Seeds: 2, Count: 60, CheckpointPath: path, Resume: true,
		Instrument: func(int, int, int64, *core.Engine) { panic("resume re-ran a run") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Failures) != 0 {
		t.Fatalf("superseded failure survived resume: %+v", resumed.Failures)
	}
	if !reflect.DeepEqual(healthy.Agg, resumed.Agg) {
		t.Fatal("resumed aggregates differ from an all-healthy sweep")
	}
}

// seedResult runs one (xi=0, vi=0, seed) cell of def directly.
func seedResult(t *testing.T, def Definition, seed int64) metrics.Result {
	t.Helper()
	cfg := def.Variants[0].Configure(def.Xs[0], seed)
	cfg.Workload.Count = 60
	e, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEngineErrorRetriedThenRecorded: an engine runtime error (here: a
// forged oracle violation) is retryable, not fatal — the sweep completes
// with a failure record naming the oracle.
func TestEngineErrorRetriedThenRecorded(t *testing.T) {
	def := findDef(t, "mm-rate")
	def.Xs = []float64{6}
	r, err := Run(context.Background(), def, Options{
		Seeds: 2, Count: 60, Oracle: true, MaxRetries: 1,
		Instrument: func(xi, vi int, seed int64, e *core.Engine) {
			if xi == 0 && vi == 0 && seed == 1 {
				// A lower-priority transaction wounding a higher-priority
				// one violates Lemma 1 under both mm-rate variants.
				e.InjectEvent(trace.Event{Kind: trace.Wound, Txn: 1, Other: 2, Priority: 1, OtherPriority: 5})
			}
		},
	})
	if err != nil {
		t.Fatalf("oracle violation aborted the sweep: %v", err)
	}
	if len(r.Failures) != 1 {
		t.Fatalf("failures = %+v, want one", r.Failures)
	}
	if f := r.Failures[0]; !strings.Contains(f.Message, "oracle") || f.Attempts != 2 {
		t.Fatalf("oracle failure record wrong: %+v", f)
	}
}

// TestOptionFaultAndAdmissionApplied: Options.Fault and Options.Admission
// reach the engine — the sweep's results show fault and rejection activity.
func TestOptionFaultAndAdmissionApplied(t *testing.T) {
	def := findDef(t, "mm-rate")
	def.Xs = []float64{16} // past saturation
	r, err := Run(context.Background(), def, Options{
		Seeds: 2, Count: 120,
		Fault:     fault.Plan{AbortProb: 0.05},
		Admission: core.AdmissionConfig{Mode: core.RejectNewest, MaxLive: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	for vi := range def.Variants {
		if r.Agg[0][vi].FaultAborts.Mean() == 0 {
			t.Fatalf("%s: Options.Fault did not reach the engine", def.Variants[vi].Name)
		}
		if r.Agg[0][vi].Rejected.Mean() == 0 {
			t.Fatalf("%s: Options.Admission did not reach the engine", def.Variants[vi].Name)
		}
	}
}

// TestResumeRefusesChangedRobustnessOptions: Fault, Admission, Oracle and
// MaxRetries are pinned by the checkpoint header.
func TestResumeRefusesChangedRobustnessOptions(t *testing.T) {
	def := findDef(t, "mm-rate")
	def.Xs = []float64{6}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	opt := Options{Seeds: 1, Count: 60, CheckpointPath: path,
		Fault: fault.Plan{AbortProb: 0.05}, Oracle: true}
	if _, err := Run(context.Background(), def, opt); err != nil {
		t.Fatal(err)
	}
	cases := []Options{
		{Seeds: 1, Count: 60, CheckpointPath: path, Resume: true, Oracle: true},                                                    // fault dropped
		{Seeds: 1, Count: 60, CheckpointPath: path, Resume: true, Fault: fault.Plan{AbortProb: 0.05}},                              // oracle dropped
		{Seeds: 1, Count: 60, CheckpointPath: path, Resume: true, Fault: fault.Plan{AbortProb: 0.1}, Oracle: true},                 // plan changed
		{Seeds: 1, Count: 60, CheckpointPath: path, Resume: true, Fault: fault.Plan{AbortProb: 0.05}, Oracle: true, MaxRetries: 3}, // retries changed
		{Seeds: 1, Count: 60, CheckpointPath: path, Resume: true, Fault: fault.Plan{AbortProb: 0.05}, Oracle: true,
			Admission: core.AdmissionConfig{Mode: core.RejectInfeasible}}, // admission changed
	}
	for i, c := range cases {
		if _, err := Run(context.Background(), def, c); err == nil ||
			!strings.Contains(err.Error(), "different options") {
			t.Errorf("case %d: changed options accepted on resume: %v", i, err)
		}
	}
	// Unchanged options resume cleanly.
	opt.Resume = true
	if _, err := Run(context.Background(), def, opt); err != nil {
		t.Errorf("identical options refused on resume: %v", err)
	}
}
