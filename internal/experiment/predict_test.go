package experiment

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestAblationPredictEndToEnd drives the conflict-prediction ablation the
// way rtexp would — a shrunken grid, all four variants (EDF-HP, CCA,
// CCA-P, CCA-T), rendered tables — and proves it checkpoint/resumes bit
// identically: a sweep killed partway and resumed must aggregate exactly
// like an uninterrupted one.
func TestAblationPredictEndToEnd(t *testing.T) {
	def, ok := ByID("ablation-predict")
	if !ok {
		t.Fatal("ablation-predict not registered")
	}
	names := make([]string, len(def.Variants))
	for i, v := range def.Variants {
		names[i] = v.Name
	}
	if got := strings.Join(names, ","); got != "EDF-HP,CCA,CCA-P,CCA-T" {
		t.Fatalf("variants = %s", got)
	}
	def.Xs = []float64{10} // shrink the grid for the test
	opt := Options{Seeds: 2, Count: 120}

	want, err := Run(context.Background(), def, opt)
	if err != nil {
		t.Fatal(err)
	}
	tables := want.Tables()
	if len(tables) == 0 {
		t.Fatal("no tables rendered")
	}
	for _, tb := range tables {
		txt := tb.Text()
		if !strings.Contains(txt, "CCA-P") || !strings.Contains(txt, "CCA-T") {
			t.Fatalf("rendered table misses prediction variants:\n%s", txt)
		}
	}

	// Kill after a few runs, then resume against the same checkpoint.
	path := filepath.Join(t.TempDir(), "predict.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	killOpt := opt
	killOpt.Workers = 1
	killOpt.CheckpointPath = path
	killOpt.Progress = func(done, total int) {
		if done >= 3 {
			cancel()
		}
	}
	if _, err := Run(ctx, def, killOpt); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed sweep returned %v, want context.Canceled", err)
	}
	resumeOpt := opt
	resumeOpt.CheckpointPath = path
	resumeOpt.Resume = true
	got, err := Run(context.Background(), def, resumeOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Agg, got.Agg) {
		t.Fatal("resumed ablation-predict aggregates differ from uninterrupted sweep")
	}
}
