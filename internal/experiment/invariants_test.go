package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// TestAdaptiveRunUpholdsPaperGuarantees is the end-to-end property test of
// the orchestration layer: random configurations executed *through* the
// adaptive runner (Instrument/Inspect hooks, worker pool, adaptive
// schedule) still uphold the paper's correctness results on every single
// run —
//
//   - conflict serializability of the recorded history;
//   - Lemma 1: no priority reversal — a wound always goes from a
//     priority at least the victim's;
//   - Theorem 2: no circular aborts — the wound graph at any single
//     instant is acyclic;
//   - Theorem 1 corollary: CCA never lock-waits (and hence the run
//     records no deadlocks).
func TestAdaptiveRunUpholdsPaperGuarantees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pols := []core.PolicyKind{core.CCA, core.EDFHP}
	polNames := []string{"CCA", "EDF-HP"}
	for trial := 0; trial < 3; trial++ {
		pol := pols[trial%len(pols)]
		dbSize := 10 + rng.Intn(40)
		readFraction := 0.5 * rng.Float64()
		def := Definition{
			ID:     fmt.Sprintf("inv-%d", trial),
			Title:  "invariants", XLabel: "rate",
			Xs:    []float64{4 + 4*rng.Float64(), 8 + 6*rng.Float64()},
			Seeds: 2,
			Variants: []Variant{{
				Name: polNames[trial%len(pols)],
				Configure: func(x float64, seed int64) core.Config {
					cfg := core.MainMemoryConfig(pol, seed)
					cfg.Workload.ArrivalRate = x
					cfg.Workload.DBSize = dbSize
					cfg.Workload.ReadFraction = readFraction
					cfg.CheckInvariants = true
					cfg.RecordHistory = true
					return cfg
				},
			}},
		}

		// Instrument attaches a wound trace pre-run; Inspect retrieves it
		// post-run. Both are called concurrently from worker goroutines.
		var mu sync.Mutex
		bufs := map[[3]int64]*trace.Buffer{}
		key := func(xi, vi int, seed int64) [3]int64 { return [3]int64{int64(xi), int64(vi), seed} }

		r, err := Run(context.Background(), def, Options{
			Count: 80, TargetCI: 0.1, MaxSeeds: 4,
			Instrument: func(xi, vi int, seed int64, e *core.Engine) {
				buf := &trace.Buffer{Filter: func(ev trace.Event) bool { return ev.Kind == trace.Wound }}
				e.SetRecorder(buf)
				mu.Lock()
				bufs[key(xi, vi, seed)] = buf
				mu.Unlock()
			},
			Inspect: func(xi, vi int, seed int64, e *core.Engine, res metrics.Result) error {
				if ok, cycle := e.History().Serializable(); !ok {
					return fmt.Errorf("history not serializable: cycle %v", cycle)
				}
				if pol == core.CCA {
					if res.LockWaits != 0 {
						return fmt.Errorf("CCA lock-waited %d times (Theorem 1)", res.LockWaits)
					}
					if res.Deadlocks != 0 {
						return fmt.Errorf("CCA deadlocked %d times", res.Deadlocks)
					}
				}
				mu.Lock()
				buf := bufs[key(xi, vi, seed)]
				mu.Unlock()
				wounds := buf.Events()
				for _, ev := range wounds {
					// Lemma 1: the wounding transaction's priority is at
					// least the victim's.
					if ev.Priority < ev.OtherPriority {
						return fmt.Errorf("priority reversal: T%d (%.2f) wounded T%d (%.2f)",
							ev.Txn, ev.Priority, ev.Other, ev.OtherPriority)
					}
				}
				// Theorem 2: wounds at any single instant form no cycle.
				if cyc := sameInstantWoundCycle(wounds); cyc != "" {
					return fmt.Errorf("circular aborts: %s", cyc)
				}
				return nil
			},
		})
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, pol, err)
		}
		for xi := range r.Agg {
			for vi := range r.Agg[xi] {
				if n := r.Agg[xi][vi].N(); n < 2 || n > 4 {
					t.Errorf("trial %d cell (%d,%d): n = %d outside [2,4]", trial, xi, vi, n)
				}
			}
		}
	}
}

// sameInstantWoundCycle groups wound events by simulated timestamp, builds
// the wounder→victim graph of each instant and reports a description of
// the first cycle found ("" when acyclic — Theorem 2 holds).
func sameInstantWoundCycle(wounds []trace.Event) string {
	byAt := map[time.Duration][][2]int{}
	for _, ev := range wounds {
		byAt[ev.At] = append(byAt[ev.At], [2]int{ev.Txn, ev.Other})
	}
	for at, edges := range byAt {
		adj := map[int][]int{}
		for _, e := range edges {
			adj[e[0]] = append(adj[e[0]], e[1])
		}
		const (
			visiting = 1
			done     = 2
		)
		state := map[int]int{}
		var dfs func(n int) bool
		dfs = func(n int) bool {
			state[n] = visiting
			for _, m := range adj[n] {
				switch state[m] {
				case visiting:
					return true
				case 0:
					if dfs(m) {
						return true
					}
				}
			}
			state[n] = done
			return false
		}
		for n := range adj {
			if state[n] == 0 && dfs(n) {
				return fmt.Sprintf("wound cycle at t=%v among %d wounds", at, len(edges))
			}
		}
	}
	return ""
}
