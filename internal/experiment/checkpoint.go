package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/metrics"
)

// The checkpoint is a JSONL file: one self-describing record per line, so a
// sweep can be killed at any moment and resumed without losing completed
// work. Two record kinds share the file:
//
//   - {"kind":"header", ...}  written once per Run invocation; pins the
//     definition ID and every option that affects results (transaction
//     count, seed schedule, precision target, sweep points, variants).
//     Resume refuses a checkpoint whose header disagrees with the current
//     options — mixing schedules would silently corrupt aggregates.
//   - {"kind":"run", ...}     one completed seed run with its full metrics
//     summary. Replay skips these runs; because encoding/json round-trips
//     float64 exactly (shortest-representation encoding), a resumed sweep
//     folds bit-identical values and aggregates bit-identically to an
//     uninterrupted one.
//
// Records of several definitions may share one file (rtexp -exp all): each
// carries its definition ID, and loaders ignore other definitions' lines.
// A truncated final line (a run killed mid-write) is tolerated; corruption
// anywhere else is an error.

// checkpointHeader pins the sweep parameters a checkpoint was written under.
type checkpointHeader struct {
	Kind     string    `json:"kind"`
	Def      string    `json:"def"`
	Count    int       `json:"count"`
	Seeds    int       `json:"seeds"`
	TargetCI float64   `json:"target_ci"`
	MaxSeeds int       `json:"max_seeds"`
	XLabel   string    `json:"x_label"`
	Xs       []float64 `json:"xs"`
	Variants []string  `json:"variants"`
}

// checkpointRecord is one completed seed run.
type checkpointRecord struct {
	Kind    string         `json:"kind"`
	Def     string         `json:"def"`
	Xi      int            `json:"xi"`
	X       float64        `json:"x"`
	Vi      int            `json:"vi"`
	Variant string         `json:"variant"`
	Seed    int64          `json:"seed"`
	Result  metrics.Result `json:"result"`
}

// cellKey addresses one seed run of one cell.
type cellKey struct {
	xi, vi, seed int
}

// headerFor builds the header for the given definition and (normalised)
// options: seeds is the effective initial batch, maxSeeds the effective cap
// (0 in fixed mode).
func headerFor(def Definition, opt Options, seeds, maxSeeds int) checkpointHeader {
	names := make([]string, len(def.Variants))
	for i, v := range def.Variants {
		names[i] = v.Name
	}
	return checkpointHeader{
		Kind:     "header",
		Def:      def.ID,
		Count:    opt.Count,
		Seeds:    seeds,
		TargetCI: opt.TargetCI,
		MaxSeeds: maxSeeds,
		XLabel:   def.XLabel,
		Xs:       def.Xs,
		Variants: names,
	}
}

// equal reports whether two headers describe the same sweep schedule.
func (h checkpointHeader) equal(o checkpointHeader) bool {
	if h.Def != o.Def || h.Count != o.Count || h.Seeds != o.Seeds ||
		h.TargetCI != o.TargetCI || h.MaxSeeds != o.MaxSeeds || h.XLabel != o.XLabel ||
		len(h.Xs) != len(o.Xs) || len(h.Variants) != len(o.Variants) {
		return false
	}
	for i := range h.Xs {
		if h.Xs[i] != o.Xs[i] {
			return false
		}
	}
	for i := range h.Variants {
		if h.Variants[i] != o.Variants[i] {
			return false
		}
	}
	return true
}

// loadCheckpoint replays the checkpoint file for this definition. It
// returns the completed runs keyed by cell and seed, and whether the file
// already held this definition's header or runs (a prior, possibly partial,
// execution). A missing file yields an empty replay.
func loadCheckpoint(path string, def Definition, want checkpointHeader) (map[cellKey]metrics.Result, bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("experiment %s: reading checkpoint: %w", def.ID, err)
	}
	lines := bytes.Split(data, []byte("\n"))
	// Drop trailing empty lines so "last line" means the last record.
	for len(lines) > 0 && len(bytes.TrimSpace(lines[len(lines)-1])) == 0 {
		lines = lines[:len(lines)-1]
	}
	replayed := make(map[cellKey]metrics.Result)
	sawPrior := false
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var kind struct {
			Kind string `json:"kind"`
			Def  string `json:"def"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			if i == len(lines)-1 {
				// A run killed mid-write leaves a truncated final
				// line; the record it held was never acknowledged,
				// so dropping it is safe.
				continue
			}
			return nil, false, fmt.Errorf("experiment %s: checkpoint %s line %d: %w", def.ID, path, i+1, err)
		}
		if kind.Def != def.ID {
			continue
		}
		sawPrior = true
		switch kind.Kind {
		case "header":
			var h checkpointHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, false, fmt.Errorf("experiment %s: checkpoint %s line %d: %w", def.ID, path, i+1, err)
			}
			if !h.equal(want) {
				return nil, false, fmt.Errorf("experiment %s: checkpoint %s was written with different options (line %d); rerun with the original flags or remove it",
					def.ID, path, i+1)
			}
		case "run":
			var rec checkpointRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				if i == len(lines)-1 {
					continue
				}
				return nil, false, fmt.Errorf("experiment %s: checkpoint %s line %d: %w", def.ID, path, i+1, err)
			}
			if rec.Xi < 0 || rec.Xi >= len(def.Xs) || rec.Vi < 0 || rec.Vi >= len(def.Variants) || rec.Seed < 1 {
				return nil, false, fmt.Errorf("experiment %s: checkpoint %s line %d: run (%d,%d,%d) out of range",
					def.ID, path, i+1, rec.Xi, rec.Vi, rec.Seed)
			}
			if rec.X != def.Xs[rec.Xi] || rec.Variant != def.Variants[rec.Vi].Name {
				return nil, false, fmt.Errorf("experiment %s: checkpoint %s line %d: run does not match the sweep (x=%v variant=%q)",
					def.ID, path, i+1, rec.X, rec.Variant)
			}
			replayed[cellKey{xi: rec.Xi, vi: rec.Vi, seed: int(rec.Seed)}] = rec.Result
		default:
			return nil, false, fmt.Errorf("experiment %s: checkpoint %s line %d: unknown record kind %q",
				def.ID, path, i+1, kind.Kind)
		}
	}
	return replayed, sawPrior, nil
}

// checkpointWriter appends records to the checkpoint, flushing after every
// line so a killed process loses at most one partial (tolerated) line.
type checkpointWriter struct {
	f *os.File
	w *bufio.Writer
}

// openCheckpoint opens (creating if needed) the checkpoint for appending
// and writes this invocation's header.
func openCheckpoint(path string, head checkpointHeader) (*checkpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: opening checkpoint: %w", head.Def, err)
	}
	c := &checkpointWriter{f: f, w: bufio.NewWriter(f)}
	if err := c.append(head); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

// record appends one completed run.
func (c *checkpointWriter) record(def Definition, o outcome) error {
	return c.append(checkpointRecord{
		Kind:    "run",
		Def:     def.ID,
		Xi:      o.xi,
		X:       def.Xs[o.xi],
		Vi:      o.vi,
		Variant: def.Variants[o.vi].Name,
		Seed:    o.seed,
		Result:  o.res,
	})
}

func (c *checkpointWriter) append(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("experiment: encoding checkpoint record: %w", err)
	}
	line = append(line, '\n')
	if _, err := c.w.Write(line); err != nil {
		return fmt.Errorf("experiment: writing checkpoint: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("experiment: flushing checkpoint: %w", err)
	}
	return nil
}

// Close flushes and closes the checkpoint file.
func (c *checkpointWriter) Close() error {
	if err := c.w.Flush(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}
