package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
)

// The checkpoint is a JSONL file: one self-describing record per line, so a
// sweep can be killed at any moment and resumed without losing completed
// work. Two record kinds share the file:
//
//   - {"kind":"header", ...}  written once per Run invocation; pins the
//     definition ID and every option that affects results (transaction
//     count, seed schedule, precision target, sweep points, variants).
//     Resume refuses a checkpoint whose header disagrees with the current
//     options — mixing schedules would silently corrupt aggregates.
//   - {"kind":"run", ...}     one completed seed run with its full metrics
//     summary. Replay skips these runs; because encoding/json round-trips
//     float64 exactly (shortest-representation encoding), a resumed sweep
//     folds bit-identical values and aggregates bit-identically to an
//     uninterrupted one.
//   - {"kind":"failed", ...}  one seed run that exhausted its retries: the
//     failure message and the attempt count, so the exact run can be
//     reproduced from the recorded seed. Replay skips these seeds too;
//     a later "run" record for the same seed (a rerun after a fix)
//     overrides the failure.
//
// Records of several definitions may share one file (rtexp -exp all): each
// carries its definition ID, and loaders ignore other definitions' lines.
// A truncated final line (a run killed mid-write) is tolerated; corruption
// anywhere else is an error.

// checkpointHeader pins the sweep parameters a checkpoint was written under.
type checkpointHeader struct {
	Kind     string    `json:"kind"`
	Def      string    `json:"def"`
	Count    int       `json:"count"`
	Seeds    int       `json:"seeds"`
	TargetCI float64   `json:"target_ci"`
	MaxSeeds int       `json:"max_seeds"`
	XLabel   string    `json:"x_label"`
	Xs       []float64 `json:"xs"`
	Variants []string  `json:"variants"`
	// Robustness options that change what every run computes (omitted
	// when off, so checkpoints from before these options existed still
	// resume cleanly).
	Oracle     bool   `json:"oracle,omitempty"`
	MaxRetries int    `json:"max_retries,omitempty"`
	Fault      string `json:"fault,omitempty"`
	Admission  string `json:"admission,omitempty"`
}

// checkpointRecord is one completed seed run.
type checkpointRecord struct {
	Kind    string         `json:"kind"`
	Def     string         `json:"def"`
	Xi      int            `json:"xi"`
	X       float64        `json:"x"`
	Vi      int            `json:"vi"`
	Variant string         `json:"variant"`
	Seed    int64          `json:"seed"`
	Result  metrics.Result `json:"result"`
}

// checkpointFailure is one seed run that exhausted its retries.
type checkpointFailure struct {
	Kind     string  `json:"kind"`
	Def      string  `json:"def"`
	Xi       int     `json:"xi"`
	X        float64 `json:"x"`
	Vi       int     `json:"vi"`
	Variant  string  `json:"variant"`
	Seed     int64   `json:"seed"`
	Attempts int     `json:"attempts"`
	Error    string  `json:"error"`
}

// cellKey addresses one seed run of one cell.
type cellKey struct {
	xi, vi, seed int
}

// replay is the outcome of loading a checkpoint: completed runs and
// finally-failed seeds, keyed by cell and seed.
type replay struct {
	runs     map[cellKey]metrics.Result
	failures map[cellKey]RunFailure
}

// headerFor builds the header for the given definition and (normalised)
// options: seeds is the effective initial batch, maxSeeds the effective cap
// (0 in fixed mode).
func headerFor(def Definition, opt Options, seeds, maxSeeds int) checkpointHeader {
	names := make([]string, len(def.Variants))
	for i, v := range def.Variants {
		names[i] = v.Name
	}
	faultStr := ""
	if !opt.Fault.Zero() {
		// The plan is small and deterministic to encode; its canonical
		// JSON doubles as the equality key in equal().
		b, err := json.Marshal(opt.Fault)
		if err != nil {
			faultStr = fmt.Sprintf("unencodable: %v", err)
		} else {
			faultStr = string(b)
		}
	}
	admStr := ""
	if opt.Admission.Mode != core.AdmitAll {
		admStr = fmt.Sprintf("%s/%d", opt.Admission.Mode, opt.Admission.MaxLive)
	}
	return checkpointHeader{
		Kind:       "header",
		Def:        def.ID,
		Count:      opt.Count,
		Seeds:      seeds,
		TargetCI:   opt.TargetCI,
		MaxSeeds:   maxSeeds,
		XLabel:     def.XLabel,
		Xs:         def.Xs,
		Variants:   names,
		Oracle:     opt.Oracle,
		MaxRetries: opt.MaxRetries,
		Fault:      faultStr,
		Admission:  admStr,
	}
}

// equal reports whether two headers describe the same sweep schedule.
func (h checkpointHeader) equal(o checkpointHeader) bool {
	if h.Def != o.Def || h.Count != o.Count || h.Seeds != o.Seeds ||
		h.TargetCI != o.TargetCI || h.MaxSeeds != o.MaxSeeds || h.XLabel != o.XLabel ||
		h.Oracle != o.Oracle || h.MaxRetries != o.MaxRetries ||
		h.Fault != o.Fault || h.Admission != o.Admission ||
		len(h.Xs) != len(o.Xs) || len(h.Variants) != len(o.Variants) {
		return false
	}
	for i := range h.Xs {
		if h.Xs[i] != o.Xs[i] {
			return false
		}
	}
	for i := range h.Variants {
		if h.Variants[i] != o.Variants[i] {
			return false
		}
	}
	return true
}

// loadCheckpoint replays the checkpoint file for this definition. It
// returns the completed and finally-failed runs keyed by cell and seed,
// and whether the file already held this definition's header or runs (a
// prior, possibly partial, execution). A missing file yields an empty
// replay. Records are applied in file order, so for one seed the latest
// record wins — a rerun that succeeds clears an earlier failure.
func loadCheckpoint(path string, def Definition, want checkpointHeader) (replay, bool, error) {
	rep := replay{runs: make(map[cellKey]metrics.Result), failures: make(map[cellKey]RunFailure)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return rep, false, nil
	}
	if err != nil {
		return rep, false, fmt.Errorf("experiment %s: reading checkpoint: %w", def.ID, err)
	}
	lines := bytes.Split(data, []byte("\n"))
	// Drop trailing empty lines so "last line" means the last record.
	for len(lines) > 0 && len(bytes.TrimSpace(lines[len(lines)-1])) == 0 {
		lines = lines[:len(lines)-1]
	}
	sawPrior := false
	checkCell := func(i, xi, vi int, seed int64, x float64, variant string) error {
		if xi < 0 || xi >= len(def.Xs) || vi < 0 || vi >= len(def.Variants) || seed < 1 {
			return fmt.Errorf("experiment %s: checkpoint %s line %d: run (%d,%d,%d) out of range",
				def.ID, path, i+1, xi, vi, seed)
		}
		if x != def.Xs[xi] || variant != def.Variants[vi].Name {
			return fmt.Errorf("experiment %s: checkpoint %s line %d: run does not match the sweep (x=%v variant=%q)",
				def.ID, path, i+1, x, variant)
		}
		return nil
	}
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var kind struct {
			Kind string `json:"kind"`
			Def  string `json:"def"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			if i == len(lines)-1 {
				// A run killed mid-write leaves a truncated final
				// line; the record it held was never acknowledged,
				// so dropping it is safe.
				continue
			}
			return rep, false, fmt.Errorf("experiment %s: checkpoint %s line %d: %w", def.ID, path, i+1, err)
		}
		if kind.Def != def.ID {
			continue
		}
		sawPrior = true
		switch kind.Kind {
		case "header":
			var h checkpointHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return rep, false, fmt.Errorf("experiment %s: checkpoint %s line %d: %w", def.ID, path, i+1, err)
			}
			if !h.equal(want) {
				return rep, false, fmt.Errorf("experiment %s: checkpoint %s was written with different options (line %d); rerun with the original flags or remove it",
					def.ID, path, i+1)
			}
		case "run":
			var rec checkpointRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				if i == len(lines)-1 {
					continue
				}
				return rep, false, fmt.Errorf("experiment %s: checkpoint %s line %d: %w", def.ID, path, i+1, err)
			}
			if err := checkCell(i, rec.Xi, rec.Vi, rec.Seed, rec.X, rec.Variant); err != nil {
				return rep, false, err
			}
			key := cellKey{xi: rec.Xi, vi: rec.Vi, seed: int(rec.Seed)}
			rep.runs[key] = rec.Result
			delete(rep.failures, key)
		case "failed":
			var rec checkpointFailure
			if err := json.Unmarshal(line, &rec); err != nil {
				if i == len(lines)-1 {
					continue
				}
				return rep, false, fmt.Errorf("experiment %s: checkpoint %s line %d: %w", def.ID, path, i+1, err)
			}
			if err := checkCell(i, rec.Xi, rec.Vi, rec.Seed, rec.X, rec.Variant); err != nil {
				return rep, false, err
			}
			key := cellKey{xi: rec.Xi, vi: rec.Vi, seed: int(rec.Seed)}
			rep.failures[key] = RunFailure{
				Xi: rec.Xi, X: rec.X, Vi: rec.Vi, Variant: rec.Variant,
				Seed: rec.Seed, Attempts: rec.Attempts, Message: rec.Error,
			}
			delete(rep.runs, key)
		default:
			return rep, false, fmt.Errorf("experiment %s: checkpoint %s line %d: unknown record kind %q",
				def.ID, path, i+1, kind.Kind)
		}
	}
	return rep, sawPrior, nil
}

// checkpointWriter appends records to the checkpoint, flushing after every
// line so a killed process loses at most one partial (tolerated) line.
type checkpointWriter struct {
	f *os.File
	w *bufio.Writer
}

// openCheckpoint opens (creating if needed) the checkpoint for appending
// and writes this invocation's header.
func openCheckpoint(path string, head checkpointHeader) (*checkpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: opening checkpoint: %w", head.Def, err)
	}
	c := &checkpointWriter{f: f, w: bufio.NewWriter(f)}
	if err := c.append(head); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

// record appends one completed run.
func (c *checkpointWriter) record(def Definition, o outcome) error {
	return c.append(checkpointRecord{
		Kind:    "run",
		Def:     def.ID,
		Xi:      o.xi,
		X:       def.Xs[o.xi],
		Vi:      o.vi,
		Variant: def.Variants[o.vi].Name,
		Seed:    o.seed,
		Result:  o.res,
	})
}

// recordFailure appends one finally-failed run.
func (c *checkpointWriter) recordFailure(def Definition, f RunFailure) error {
	return c.append(checkpointFailure{
		Kind:     "failed",
		Def:      def.ID,
		Xi:       f.Xi,
		X:        f.X,
		Vi:       f.Vi,
		Variant:  f.Variant,
		Seed:     f.Seed,
		Attempts: f.Attempts,
		Error:    f.Message,
	})
}

func (c *checkpointWriter) append(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("experiment: encoding checkpoint record: %w", err)
	}
	line = append(line, '\n')
	if _, err := c.w.Write(line); err != nil {
		return fmt.Errorf("experiment: writing checkpoint: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("experiment: flushing checkpoint: %w", err)
	}
	return nil
}

// Close flushes and closes the checkpoint file.
func (c *checkpointWriter) Close() error {
	if err := c.w.Flush(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}
