package experiment

import (
	"context"
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// adaptiveDef is a tiny two-variant sweep whose cells have genuinely
// different variances, so some converge early and others hit the cap.
func adaptiveDef() Definition {
	mk := func(pol core.PolicyKind) func(x float64, seed int64) core.Config {
		return func(x float64, seed int64) core.Config {
			cfg := core.MainMemoryConfig(pol, seed)
			cfg.Workload.ArrivalRate = x
			return cfg
		}
	}
	return Definition{
		ID: "adaptive-test", Title: "adaptive test", XLabel: "rate",
		Xs: []float64{4, 10}, Seeds: 2,
		Variants: []Variant{
			{Name: "EDF-HP", Configure: mk(core.EDFHP)},
			{Name: "CCA", Configure: mk(core.CCA)},
		},
	}
}

// TestAdaptiveStopsAtTargetOrCap: every cell either meets the relative CI
// target (Converged true, RelCI95 <= target) or stops exactly at the seed
// cap (Converged false, N == MaxSeeds); n always lies in [2, MaxSeeds].
func TestAdaptiveStopsAtTargetOrCap(t *testing.T) {
	def := adaptiveDef()
	const target, maxSeeds = 0.05, 7
	r, err := Run(context.Background(), def, Options{
		Count: 150, TargetCI: target, MaxSeeds: maxSeeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	sawCap := false
	for xi := range r.Agg {
		for vi := range r.Agg[xi] {
			acc := &r.Agg[xi][vi].MissPercent
			n := acc.N()
			if n < 2 || n > maxSeeds {
				t.Errorf("cell (%d,%d): n = %d outside [2,%d]", xi, vi, n, maxSeeds)
			}
			if r.Converged[xi][vi] {
				if rel := acc.RelCI95(); rel > target {
					t.Errorf("cell (%d,%d) marked converged with RelCI95 %.4f > %.4f", xi, vi, rel, target)
				}
			} else {
				sawCap = true
				if n != maxSeeds {
					t.Errorf("cell (%d,%d) unconverged but stopped at n = %d, not the cap %d", xi, vi, n, maxSeeds)
				}
			}
		}
	}
	_ = sawCap // both outcomes are legitimate; the invariants above are the test
}

// TestAdaptiveScheduleDeterministic: the adaptive schedule makes its
// grow/stop decisions only at deterministic barrier points, so the final
// per-cell seed counts, aggregates and convergence flags are identical
// whatever the worker count.
func TestAdaptiveScheduleDeterministic(t *testing.T) {
	def := adaptiveDef()
	opt := Options{Count: 120, TargetCI: 0.08, MaxSeeds: 6}
	o1 := opt
	o1.Workers = 1
	a, err := Run(context.Background(), def, o1)
	if err != nil {
		t.Fatal(err)
	}
	oN := opt
	oN.Workers = runtime.GOMAXPROCS(0)
	b, err := Run(context.Background(), def, oN)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Agg, b.Agg) {
		t.Fatal("worker count changed adaptive aggregates")
	}
	if !reflect.DeepEqual(a.Converged, b.Converged) {
		t.Fatal("worker count changed convergence flags")
	}
}

// TestAdaptiveCellDone: CellDone fires exactly once per cell, with the
// final seed count actually aggregated for that cell.
func TestAdaptiveCellDone(t *testing.T) {
	def := adaptiveDef()
	type final struct {
		n         int
		converged bool
	}
	var mu sync.Mutex
	got := map[[2]int]final{}
	r, err := Run(context.Background(), def, Options{
		Count: 100, TargetCI: 0.08, MaxSeeds: 5,
		CellDone: func(xi, vi, n int, converged bool) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := got[[2]int{xi, vi}]; dup {
				t.Errorf("CellDone fired twice for cell (%d,%d)", xi, vi)
			}
			got[[2]int{xi, vi}] = final{n: n, converged: converged}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(def.Xs)*len(def.Variants) {
		t.Fatalf("CellDone fired for %d cells, want %d", len(got), len(def.Xs)*len(def.Variants))
	}
	for key, f := range got {
		xi, vi := key[0], key[1]
		if n := r.Agg[xi][vi].MissPercent.N(); n != f.n {
			t.Errorf("cell (%d,%d): CellDone n = %d, aggregate n = %d", xi, vi, f.n, n)
		}
		if f.converged != r.Converged[xi][vi] {
			t.Errorf("cell (%d,%d): CellDone converged = %v, Result = %v", xi, vi, f.converged, r.Converged[xi][vi])
		}
	}
}

// TestAdaptiveCustomMetric: the convergence metric is pluggable; an
// always-zero accumulator converges every cell at the initial batch.
func TestAdaptiveCustomMetric(t *testing.T) {
	def := adaptiveDef()
	zero := &stats.Accumulator{}
	zero.Add(0)
	zero.Add(0)
	r, err := Run(context.Background(), def, Options{
		Count: 60, TargetCI: 0.01, MaxSeeds: 9,
		Metric: func(a *metrics.Aggregate) *stats.Accumulator { return zero },
	})
	if err != nil {
		t.Fatal(err)
	}
	for xi := range r.Agg {
		for vi := range r.Agg[xi] {
			if n := r.Agg[xi][vi].MissPercent.N(); n != 2 {
				t.Errorf("cell (%d,%d): n = %d, want initial batch 2", xi, vi, n)
			}
			if !r.Converged[xi][vi] {
				t.Errorf("cell (%d,%d) not converged under constant metric", xi, vi)
			}
		}
	}
}

// TestFixedModeUnchanged: without TargetCI the runner behaves exactly as
// the fixed fan-out (n == Seeds everywhere, every cell converged).
func TestFixedModeUnchanged(t *testing.T) {
	def := adaptiveDef()
	r, err := Run(context.Background(), def, Options{Seeds: 3, Count: 80})
	if err != nil {
		t.Fatal(err)
	}
	for xi := range r.Agg {
		for vi := range r.Agg[xi] {
			if n := r.Agg[xi][vi].MissPercent.N(); n != 3 {
				t.Errorf("cell (%d,%d): n = %d, want 3", xi, vi, n)
			}
			if !r.Converged[xi][vi] {
				t.Errorf("fixed-mode cell (%d,%d) reported unconverged", xi, vi)
			}
		}
	}
}

// TestRelCI95Edge: RelCI95's edge cases drive adaptive convergence, so pin
// them: no interval below two observations, exact-zero cells converge.
func TestRelCI95Edge(t *testing.T) {
	var a stats.Accumulator
	if !math.IsInf(a.RelCI95(), 1) {
		t.Error("empty accumulator must have infinite relative CI")
	}
	a.Add(5)
	if !math.IsInf(a.RelCI95(), 1) {
		t.Error("single observation must have infinite relative CI")
	}
	var z stats.Accumulator
	z.Add(0)
	z.Add(0)
	if z.RelCI95() != 0 {
		t.Errorf("all-zero accumulator RelCI95 = %v, want 0", z.RelCI95())
	}
}
