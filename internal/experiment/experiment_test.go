package experiment

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func findDef(t *testing.T, id string) Definition {
	t.Helper()
	d, ok := ByID(id)
	if !ok {
		t.Fatalf("definition %q not found", id)
	}
	return d
}

func TestRegistryCoversEveryPaperFigure(t *testing.T) {
	want := []string{"4a", "4b", "4c", "4d", "4e", "4f", "5a", "5b", "5c", "5d", "5e", "5f"}
	have := map[string]bool{}
	for _, d := range All() {
		for _, f := range d.Figures {
			if have[f.ID] {
				t.Errorf("figure %s defined twice", f.ID)
			}
			have[f.ID] = true
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("paper figure %s missing from registry", id)
		}
	}
}

func TestByIDResolvesFiguresAndSweeps(t *testing.T) {
	if d := findDef(t, "mm-rate"); d.ID != "mm-rate" {
		t.Error("sweep lookup failed")
	}
	if d := findDef(t, "4c"); d.ID != "mm-rate" {
		t.Errorf("figure 4c resolved to %s", d.ID)
	}
	if d := findDef(t, "fig5b"); d.ID != "disk-rate" {
		t.Errorf("fig5b resolved to %s", d.ID)
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown ID resolved")
	}
}

func TestDefinitionsWellFormed(t *testing.T) {
	for _, d := range All() {
		if d.ID == "" || d.Title == "" || len(d.Xs) == 0 || d.Seeds <= 0 || len(d.Variants) == 0 || len(d.Figures) == 0 {
			t.Errorf("definition %q incomplete", d.ID)
		}
		for _, v := range d.Variants {
			cfg := v.Configure(d.Xs[0], 1)
			if err := cfg.Validate(); err != nil {
				t.Errorf("%s/%s: invalid config at x=%v: %v", d.ID, v.Name, d.Xs[0], err)
			}
		}
	}
}

func TestRunSmallSweep(t *testing.T) {
	def := findDef(t, "mm-rate")
	def.Xs = []float64{2, 8}
	var progressed int
	r, err := Run(context.Background(), def, Options{Seeds: 3, Count: 120, Progress: func(done, total int) { progressed = done }})
	if err != nil {
		t.Fatal(err)
	}
	if progressed != 2*2*3 {
		t.Errorf("progress reported %d, want 12", progressed)
	}
	if len(r.Agg) != 2 || len(r.Agg[0]) != 2 {
		t.Fatalf("aggregate shape wrong")
	}
	if r.Agg[0][0].N() != 3 {
		t.Fatalf("seeds aggregated = %d, want 3", r.Agg[0][0].N())
	}
	tables := r.Tables()
	if len(tables) != len(def.Figures) {
		t.Fatalf("rendered %d tables, want %d", len(tables), len(def.Figures))
	}
	// Figure 4.a table: x column plus (value, CI) per variant.
	txt := tables[0].Text()
	if !strings.Contains(txt, "EDF-HP miss%") || !strings.Contains(txt, "CCA miss%") {
		t.Errorf("figure 4.a table malformed:\n%s", txt)
	}
}

// TestRunDeterministicAggregation: a serial run and a fully parallel run
// (Workers: GOMAXPROCS) must produce identical aggregates — not just equal
// summaries but every accumulator of every (point, variant), which pins the
// collect-by-seed fold order against completion-order nondeterminism.
func TestRunDeterministicAggregation(t *testing.T) {
	def := findDef(t, "mm-rate")
	def.Xs = []float64{6}
	a, err := Run(context.Background(), def, Options{Seeds: 3, Count: 100, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), def, Options{Seeds: 3, Count: 100, Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Agg, b.Agg) {
		t.Fatal("worker count changed aggregated results")
	}
}

// TestRunDeterministicAggregationMultiCPU repeats the worker-count
// determinism check on the multiprocessor ablation (NumCPUs 2 and 4): the
// engine's multi-slot dispatch must replay identically whether runs execute
// serially or on every available worker.
func TestRunDeterministicAggregationMultiCPU(t *testing.T) {
	def := findDef(t, "ablation-mp")
	def.Xs = []float64{2, 4}
	a, err := Run(context.Background(), def, Options{Seeds: 2, Count: 80, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), def, Options{Seeds: 2, Count: 80, Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Agg, b.Agg) {
		t.Fatal("worker count changed aggregated multi-CPU results")
	}
}

// TestSummaryPreservesCommitCounts: in the soft-deadline model every
// transaction commits, so the across-seed summary of a sweep must report
// exactly the per-run transaction count — a regression test for Summary
// zeroing the count-valued fields.
func TestSummaryPreservesCommitCounts(t *testing.T) {
	def := findDef(t, "mm-rate")
	def.Xs = []float64{8}
	const count = 90
	r, err := Run(context.Background(), def, Options{Seeds: 3, Count: count})
	if err != nil {
		t.Fatal(err)
	}
	for vi := range def.Variants {
		s := r.Summary(0, vi)
		if s.Committed != count {
			t.Errorf("%s: Summary.Committed = %d, want %d", def.Variants[vi].Name, s.Committed, count)
		}
		if s.Dropped != 0 {
			t.Errorf("%s: Summary.Dropped = %d, want 0 (soft deadlines)", def.Variants[vi].Name, s.Dropped)
		}
		if s.Elapsed <= 0 {
			t.Errorf("%s: Summary.Elapsed = %v, want > 0", def.Variants[vi].Name, s.Elapsed)
		}
	}
}

// TestRunErrorLeaksNoGoroutines: an error partway through a large sweep must
// cancel the feeder and drain the workers before Run returns. Before the
// fix, the early return left the feeder blocked on the unbuffered job
// channel forever.
func TestRunErrorLeaksNoGoroutines(t *testing.T) {
	def := Definition{
		ID: "leak", Title: "leak", XLabel: "x", Xs: make([]float64, 40), Seeds: 5,
		Variants: []Variant{{Name: "bad", Configure: func(x float64, seed int64) core.Config {
			return core.Config{} // invalid: every job fails validation
		}}},
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if _, err := Run(context.Background(), def, Options{Workers: 4}); err == nil {
			t.Fatal("invalid sweep did not fail")
		}
	}
	// Give exited goroutines a moment to be reaped before comparing.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked: %d before, %d after\n%s",
			before, after, buf[:runtime.Stack(buf, true)])
	}
}

func TestRunPropagatesEngineErrors(t *testing.T) {
	def := Definition{
		ID: "bad", Title: "bad", XLabel: "x", Xs: []float64{1}, Seeds: 1,
		Variants: []Variant{{Name: "b", Configure: func(x float64, seed int64) core.Config {
			return core.Config{} // invalid: fails validation
		}}},
	}
	if _, err := Run(context.Background(), def, Options{}); err == nil {
		t.Fatal("invalid config did not propagate an error")
	} else if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error lacks experiment context: %v", err)
	}
}

func TestTable1Table2(t *testing.T) {
	t1 := Table1().Text()
	for _, want := range []string{"Transaction type", "50", "(20, 10)", "Database size", "30", "12.50"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2().Text()
	for _, want := range []string{"Disk access time", "25", "1/10", "Abort cost", "5"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, t2)
		}
	}
}

func TestSeqHelper(t *testing.T) {
	xs := seq(1, 3, 1)
	if len(xs) != 3 || xs[0] != 1 || xs[2] != 3 {
		t.Fatalf("seq = %v", xs)
	}
	xs = seq(0.2, 1.8, 0.2)
	if len(xs) != 9 {
		t.Fatalf("fractional seq length = %d, want 9", len(xs))
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(4) != "4" {
		t.Error("integer not trimmed")
	}
	if trimFloat(0.2) != "0.2" {
		t.Errorf("trimFloat(0.2) = %q", trimFloat(0.2))
	}
}

func TestChartsRendered(t *testing.T) {
	def := findDef(t, "mm-rate")
	def.Xs = []float64{4, 8}
	r, err := Run(context.Background(), def, Options{Seeds: 2, Count: 60})
	if err != nil {
		t.Fatal(err)
	}
	charts := r.Charts()
	if len(charts) != len(def.Figures) {
		t.Fatalf("rendered %d charts, want %d (every mm-rate figure defines one)", len(charts), len(def.Figures))
	}
	out := charts[0].Render()
	for _, want := range []string{"EDF-HP", "CCA", "x: rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 4.a chart missing %q:\n%s", want, out)
		}
	}
	// The improvement chart (figure 4.b) has its own two series.
	imp := charts[1].Render()
	if !strings.Contains(imp, "miss% improvement") || !strings.Contains(imp, "lateness improvement") {
		t.Errorf("improvement chart malformed:\n%s", imp)
	}
}

func TestClassTableRendered(t *testing.T) {
	def := findDef(t, "mm-variance")
	def.Xs = []float64{1.0}
	r, err := Run(context.Background(), def, Options{Seeds: 2, Count: 80})
	if err != nil {
		t.Fatal(err)
	}
	var classTbl string
	for i, f := range def.Figures {
		if f.ID == "4class" {
			classTbl = r.Tables()[i].Text()
		}
	}
	if classTbl == "" {
		t.Fatal("4class figure missing from mm-variance")
	}
	for _, want := range []string{"EDF-HP c0 miss%", "CCA c2 miss%"} {
		if !strings.Contains(classTbl, want) {
			t.Errorf("class table missing %q:\n%s", want, classTbl)
		}
	}
}
