package predict

import (
	"bytes"
	"testing"
	"time"
)

// FuzzTableCodec holds the stats-table serialization to the canonical-form
// contract under arbitrary input: any bytes the decoder accepts must
// re-marshal byte-identically, answer queries without panicking, and
// survive a second round trip.
func FuzzTableCodec(f *testing.F) {
	empty := New(Config{Types: 4, Window: 10 * time.Millisecond, Windows: 4, Decay: 0.5})
	b, _ := empty.MarshalBinary()
	f.Add(b)

	busy := New(Config{Types: 8, Window: 5 * time.Millisecond, Windows: 8, Decay: 0.25})
	for i := 0; i < 200; i++ {
		busy.Record(Kind(i%NumKinds), i%8, (i*5)%8, time.Duration(i)*time.Millisecond)
	}
	b, _ = busy.MarshalBinary()
	f.Add(b)
	f.Add([]byte("RTPT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var tab Table
		if err := tab.UnmarshalBinary(data); err != nil {
			return
		}
		wire, err := tab.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted table failed to marshal: %v", err)
		}
		var back Table
		if err := back.UnmarshalBinary(wire); err != nil {
			t.Fatalf("canonical form rejected: %v", err)
		}
		wire2, err := back.MarshalBinary()
		if err != nil {
			t.Fatalf("second marshal: %v", err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatal("canonical form is not a fixed point")
		}
		// Queries on arbitrary accepted tables must be total.
		now := 123 * time.Millisecond
		tab.Rate(0, 0, now)
		tab.Rate(-5, 1<<20, now)
		tab.TopPairs(now, 4)
		tab.ActivePairs(now)
	})
}
