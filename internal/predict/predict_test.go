package predict

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{Types: 8, Window: 10 * time.Millisecond, Windows: 4, Decay: 0.5}
}

// event is one recorded observation for the property tests.
type event struct {
	k    Kind
	a, b int
	at   time.Duration
}

func randomEvents(rng *rand.Rand, n, types int, span time.Duration) []event {
	evs := make([]event, n)
	at := time.Duration(0)
	for i := range evs {
		at += time.Duration(rng.Int63n(int64(span / time.Duration(n))))
		evs[i] = event{
			k:  Kind(rng.Intn(NumKinds)),
			a:  rng.Intn(types),
			b:  rng.Intn(types),
			at: at,
		}
	}
	return evs
}

func record(t *Table, evs []event) {
	for _, ev := range evs {
		t.Record(ev.k, ev.a, ev.b, ev.at)
	}
}

func mustMarshal(t *testing.T, tab *Table) []byte {
	t.Helper()
	b, err := tab.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestOrderDeterministic: the final table depends only on the multiset of
// recorded events, not their order — even across windows (a stale event is
// filed into its historical bucket, or dropped once it is past the ring,
// exactly as a timely record would have converged to).
func TestOrderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		evs := randomEvents(rng, 200, 8, 300*time.Millisecond)
		ref := New(testConfig())
		record(ref, evs)
		want := mustMarshal(t, ref)

		shuffled := append([]event(nil), evs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := New(testConfig())
		record(got, shuffled)
		if !bytes.Equal(want, mustMarshal(t, got)) {
			t.Fatalf("trial %d: shuffled event order produced a different table", trial)
		}
	}
}

// TestReadsArePure: queries mutate nothing — any interleaving of reads at
// any instants returns the same values, and reads never perturb later
// writes.
func TestReadsArePure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	evs := randomEvents(rng, 300, 8, 200*time.Millisecond)
	tab := New(testConfig())
	record(tab, evs)
	pristine := tab.Clone()

	nows := []time.Duration{0, 40 * time.Millisecond, 123 * time.Millisecond, 200 * time.Millisecond, time.Hour}
	type key struct {
		a, b int
		at   time.Duration
	}
	first := map[key]float64{}
	for pass := 0; pass < 3; pass++ {
		for _, now := range nows {
			for a := 0; a < 8; a++ {
				for b := 0; b < 8; b++ {
					r := tab.Rate(a, b, now)
					k := key{a, b, now}
					if pass == 0 {
						first[k] = r
					} else if r != first[k] {
						t.Fatalf("Rate(%d,%d,%v) moved from %v to %v across read passes", a, b, now, first[k], r)
					}
				}
			}
			tab.TopPairs(now, 4)
			tab.ActivePairs(now)
		}
	}
	if !bytes.Equal(mustMarshal(t, pristine), mustMarshal(t, tab)) {
		t.Fatal("reads mutated the table")
	}
}

// TestDecaySemantics pins the decay law: an event aged a windows weighs
// Decay^a, and weighs zero once it leaves the ring.
func TestDecaySemantics(t *testing.T) {
	cfg := testConfig() // Window 10ms, 4 windows, decay 0.5
	tab := New(cfg)
	tab.Record(Wound, 1, 2, 5*time.Millisecond) // window 0

	cases := []struct {
		now  time.Duration
		want float64
	}{
		{7 * time.Millisecond, 1},     // age 0
		{15 * time.Millisecond, 0.5},  // age 1
		{25 * time.Millisecond, 0.25}, // age 2
		{39 * time.Millisecond, 0.125},
		{40 * time.Millisecond, 0}, // age 4: out of the ring
		{time.Hour, 0},
	}
	for _, c := range cases {
		if got := tab.Count(Wound, 2, 1, c.now); got != c.want {
			t.Errorf("Count at %v = %v, want %v", c.now, got, c.want)
		}
	}
}

// TestDecayZeroRetainsNothing: the degenerate-equivalence knob.
func TestDecayZeroRetainsNothing(t *testing.T) {
	cfg := testConfig()
	cfg.Decay = 0
	tab := New(cfg)
	for i := 0; i < 100; i++ {
		tab.Record(Wound, i%8, (i*3)%8, time.Duration(i)*time.Millisecond)
		tab.Record(Commit, i%8, (i*3)%8, time.Duration(i)*time.Millisecond)
	}
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if r := tab.Rate(a, b, 50*time.Millisecond); r != 0 {
				t.Fatalf("Rate(%d,%d) = %v with Decay 0", a, b, r)
			}
		}
	}
	if n := tab.ActivePairs(time.Hour); n != 0 {
		t.Fatalf("%d active pairs with Decay 0", n)
	}
}

// TestMergeEqualsSingle: recording a stream split across N tables and
// merging them (in any canonical order, at any boundary cadence) is
// bit-identical to one table that recorded everything — the shard runner's
// correctness condition.
func TestMergeEqualsSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		nshards := 1 + rng.Intn(5)
		evs := randomEvents(rng, 400, 8, 500*time.Millisecond)

		single := New(testConfig())
		record(single, evs)

		shards := make([]*Table, nshards)
		for i := range shards {
			shards[i] = New(testConfig())
		}
		for i, ev := range evs {
			shards[i%nshards].Record(ev.k, ev.a, ev.b, ev.at)
		}
		merged := New(testConfig())
		for _, s := range shards {
			merged.Merge(s)
		}
		if !bytes.Equal(mustMarshal(t, single), mustMarshal(t, merged)) {
			t.Fatalf("trial %d: merged %d-shard tables differ from the single-table run", trial, nshards)
		}

		// Epoch cadence: merging partial snapshots repeatedly into a fresh
		// view each boundary must agree too (the runner rebuilds the view
		// from scratch each epoch).
		view := New(testConfig())
		for _, s := range shards {
			view.Merge(s)
		}
		if !bytes.Equal(mustMarshal(t, single), mustMarshal(t, view)) {
			t.Fatalf("trial %d: rebuilt view differs", trial)
		}
	}
}

// TestMergeCommutes: shard order must not matter for the merged counts
// (the runner fixes ascending shard order; this pins that the choice is
// cosmetic, not load-bearing).
func TestMergeCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	evs := randomEvents(rng, 300, 8, 400*time.Millisecond)
	a, b := New(testConfig()), New(testConfig())
	for i, ev := range evs {
		if i%2 == 0 {
			a.Record(ev.k, ev.a, ev.b, ev.at)
		} else {
			b.Record(ev.k, ev.a, ev.b, ev.at)
		}
	}
	ab := New(testConfig())
	ab.Merge(a)
	ab.Merge(b)
	ba := New(testConfig())
	ba.Merge(b)
	ba.Merge(a)
	if !bytes.Equal(mustMarshal(t, ab), mustMarshal(t, ba)) {
		t.Fatal("merge order changed the table")
	}
}

// TestRoundTrip: serialization is exact — the wire form is canonical and
// the restored table is observably identical (queries and future records).
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		evs := randomEvents(rng, 250, 8, 300*time.Millisecond)
		orig := New(testConfig())
		record(orig, evs)
		wire := mustMarshal(t, orig)

		var back Table
		if err := back.UnmarshalBinary(wire); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !bytes.Equal(wire, mustMarshal(t, &back)) {
			t.Fatal("re-marshal is not byte-identical")
		}
		if !reflect.DeepEqual(orig.cfg, back.cfg) {
			t.Fatalf("config changed: %+v vs %+v", orig.cfg, back.cfg)
		}
		// The restored table keeps behaving identically.
		extra := randomEvents(rng, 50, 8, 100*time.Millisecond)
		for i := range extra {
			extra[i].at += 300 * time.Millisecond
		}
		record(orig, extra)
		record(&back, extra)
		if !bytes.Equal(mustMarshal(t, orig), mustMarshal(t, &back)) {
			t.Fatal("restored table diverged after further records")
		}
	}

	// Empty table round-trips too.
	empty := New(testConfig())
	wire := mustMarshal(t, empty)
	var back Table
	if err := back.UnmarshalBinary(wire); err != nil {
		t.Fatalf("unmarshal empty: %v", err)
	}
	if !bytes.Equal(wire, mustMarshal(t, &back)) {
		t.Fatal("empty table round-trip not byte-identical")
	}
}

// TestUnmarshalRejectsGarbage: obvious malformed inputs error out rather
// than panic or allocate absurdly.
func TestUnmarshalRejectsGarbage(t *testing.T) {
	good := mustMarshal(t, New(testConfig()))
	cases := [][]byte{
		nil,
		{},
		[]byte("not a table"),
		good[:len(good)-1],
		append(append([]byte{}, good...), 0xff),
	}
	for i, data := range cases {
		var tab Table
		if err := tab.UnmarshalBinary(data); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

// TestRateDefinition pins the rate law: conflicts/(conflicts+commits) with
// restarts excluded.
func TestRateDefinition(t *testing.T) {
	tab := New(testConfig())
	now := 5 * time.Millisecond
	tab.Record(Wound, 1, 2, now)
	tab.Record(Block, 1, 2, now)
	tab.Record(Commit, 1, 2, now)
	tab.Record(Commit, 1, 2, now)
	tab.Record(Restart, 1, 2, now)
	if got, want := tab.Rate(1, 2, now), 2.0/4.0; got != want {
		t.Fatalf("Rate = %v, want %v", got, want)
	}
	// Unordered pair: (2,1) reads the same cell.
	if tab.Rate(2, 1, now) != tab.Rate(1, 2, now) {
		t.Fatal("pair key is ordered")
	}
	if tab.Rate(3, 3, now) != 0 {
		t.Fatal("untouched pair has nonzero rate")
	}
}

// TestCloneIndependent: a clone shares no state with its origin.
func TestCloneIndependent(t *testing.T) {
	tab := New(testConfig())
	tab.Record(Wound, 0, 1, time.Millisecond)
	c := tab.Clone()
	c.Record(Wound, 0, 1, time.Millisecond)
	if tab.Count(Wound, 0, 1, time.Millisecond) != 1 {
		t.Fatal("clone write visible in origin")
	}
	if c.Count(Wound, 0, 1, time.Millisecond) != 2 {
		t.Fatal("clone did not record")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Types: 0},
		{Types: 1, Decay: -0.5},
		{Types: 1, Decay: 1.5},
		{Types: 1, Windows: MaxWindows + 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c)
		}
	}
	ok := Config{Types: 50, Decay: 0.5}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
