package predict

// Binary serialization for checkpoint/resume (internal/experiment) and for
// shipping per-shard tables. The format is sparse — only cells with a
// nonzero count are written — and canonical: marshaling a table, then
// unmarshaling, then marshaling again yields byte-identical output, and the
// restored table answers every query (Rate, Count, TopPairs) exactly like
// the original and keeps recording exactly like it (the property tests pin
// both).
//
// Layout (all integers unsigned varints unless noted):
//
//	magic "RTPT" | version 1
//	Types | Window(ns) | Windows | Decay (IEEE-754 bits, fixed 8 bytes LE)
//	nonEmptyCells
//	per cell, ascending index:
//	  cellIndex | base | Windows×NumKinds counts

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

var codecMagic = [4]byte{'R', 'T', 'P', 'T'}

const codecVersion = 1

// cellDirty reports whether a cell holds any count at all.
func (t *Table) cellDirty(cell int) bool {
	row := t.counts[cell*t.cfg.Windows*NumKinds : (cell+1)*t.cfg.Windows*NumKinds]
	for _, c := range row {
		if c != 0 {
			return true
		}
	}
	return false
}

// MarshalBinary serializes the table. A cell whose counts are all zero is
// omitted — its base index carries no observable information (every read
// of it is 0 and a future Record re-bases it), so the canonical form drops
// it.
func (t *Table) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = append(buf, codecMagic[:]...)
	buf = appendUvarint(buf, codecVersion)
	buf = appendUvarint(buf, uint64(t.cfg.Types))
	buf = appendUvarint(buf, uint64(t.cfg.Window))
	buf = appendUvarint(buf, uint64(t.cfg.Windows))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.cfg.Decay))
	n := 0
	for cell := 0; cell < t.cells; cell++ {
		if t.base[cell] >= 0 && t.cellDirty(cell) {
			n++
		}
	}
	buf = appendUvarint(buf, uint64(n))
	for cell := 0; cell < t.cells; cell++ {
		if t.base[cell] < 0 || !t.cellDirty(cell) {
			continue
		}
		buf = appendUvarint(buf, uint64(cell))
		buf = appendUvarint(buf, uint64(t.base[cell]))
		row := t.counts[cell*t.cfg.Windows*NumKinds : (cell+1)*t.cfg.Windows*NumKinds]
		for _, c := range row {
			buf = appendUvarint(buf, uint64(c))
		}
	}
	return buf, nil
}

// UnmarshalBinary restores a table serialized by MarshalBinary, replacing
// t's configuration and contents. Malformed input returns an error and
// leaves t unchanged.
func (t *Table) UnmarshalBinary(data []byte) error {
	d := decoder{buf: data}
	var magic [4]byte
	if err := d.bytes(magic[:]); err != nil {
		return err
	}
	if magic != codecMagic {
		return fmt.Errorf("predict: bad magic %q", magic[:])
	}
	version, err := d.uvarint()
	if err != nil {
		return err
	}
	if version != codecVersion {
		return fmt.Errorf("predict: unsupported version %d", version)
	}
	types, err := d.uvarint()
	if err != nil {
		return err
	}
	window, err := d.uvarint()
	if err != nil {
		return err
	}
	windows, err := d.uvarint()
	if err != nil {
		return err
	}
	var decayBits [8]byte
	if err := d.bytes(decayBits[:]); err != nil {
		return err
	}
	cfg := Config{
		Types:   int(types),
		Window:  time.Duration(window),
		Windows: int(windows),
		Decay:   math.Float64frombits(binary.LittleEndian.Uint64(decayBits[:])),
	}
	if types > 4096 || window > uint64(1<<62) || windows > MaxWindows {
		return fmt.Errorf("predict: implausible header (types %d, window %d, windows %d)", types, window, windows)
	}
	if cells := types * (types + 1) / 2; cells*windows*NumKinds > 1<<22 {
		return fmt.Errorf("predict: table too large (%d count buckets)", cells*windows*NumKinds)
	}
	if cfg.Window <= 0 || cfg.Windows <= 0 {
		return fmt.Errorf("predict: non-positive window geometry")
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	nt := New(cfg)
	n, err := d.uvarint()
	if err != nil {
		return err
	}
	if n > uint64(nt.cells) {
		return fmt.Errorf("predict: %d cells for a %d-cell table", n, nt.cells)
	}
	prev := -1
	for i := uint64(0); i < n; i++ {
		cell, err := d.uvarint()
		if err != nil {
			return err
		}
		if int(cell) >= nt.cells || int(cell) <= prev {
			return fmt.Errorf("predict: cell index %d out of order or range", cell)
		}
		prev = int(cell)
		base, err := d.uvarint()
		if err != nil {
			return err
		}
		if base > uint64(math.MaxInt64) {
			return fmt.Errorf("predict: cell %d base overflow", cell)
		}
		nt.base[cell] = int64(base)
		row := nt.counts[int(cell)*cfg.Windows*NumKinds : (int(cell)+1)*cfg.Windows*NumKinds]
		dirty := false
		for j := range row {
			c, err := d.uvarint()
			if err != nil {
				return err
			}
			if c > math.MaxUint32 {
				return fmt.Errorf("predict: cell %d count overflow", cell)
			}
			row[j] = uint32(c)
			dirty = dirty || c != 0
		}
		if !dirty {
			return fmt.Errorf("predict: cell %d serialized with all-zero counts", cell)
		}
	}
	if len(d.buf) != d.off {
		return fmt.Errorf("predict: %d trailing bytes", len(d.buf)-d.off)
	}
	*t = *nt
	return nil
}

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) bytes(dst []byte) error {
	if d.off+len(dst) > len(d.buf) {
		return fmt.Errorf("predict: truncated input")
	}
	copy(dst, d.buf[d.off:])
	d.off += len(dst)
	return nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("predict: bad varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}
