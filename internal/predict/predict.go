// Package predict maintains online per-type-pair conflict statistics for
// the conflict-prediction scheduling policies (CCA-P, CCA-T in
// internal/core).
//
// A Table counts scheduler decisions — blocks, wounds, restarts, commits —
// per unordered pair of transaction types (the key space of the workload
// generator's type table), bucketed into fixed-width windows of simulated
// time. Reads weight each bucket by Decay^age, so stale history ages out;
// buckets older than the ring (Windows buckets) weigh zero and are dropped
// lazily.
//
// Determinism is the design constraint, not an afterthought:
//
//   - state is pure integer counts keyed by absolute window index, so the
//     final table depends only on the multiset of recorded events, never on
//     their order within a window;
//   - reads (Rate, Count, TopPairs) are pure functions of (state, now) — no
//     mutation, no wall clock — so concurrent readers are safe and a query
//     at time t returns the same value no matter when buckets were shifted;
//   - Merge adds counts bucket-wise by absolute window, so merging N
//     per-shard tables is bit-identical to one table that recorded all N
//     event streams (the shard runner's epoch-boundary exchange relies on
//     this).
package predict

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Kind is the class of recorded scheduler event.
type Kind uint8

const (
	// Block: a requester waited for a holder on a data conflict.
	Block Kind = iota
	// Wound: a requester aborted a holder on a data conflict.
	Wound
	// Restart: a transaction was aborted (for any reason) and will rerun.
	Restart
	// Commit: a transaction committed while its pair peer was partially
	// executed (the conflict-rate denominator).
	Commit

	// NumKinds is the number of event kinds.
	NumKinds = 4
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Block:
		return "block"
	case Wound:
		return "wound"
	case Restart:
		return "restart"
	case Commit:
		return "commit"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Defaults for the zero fields of Config.
const (
	DefaultWindow  = 50 * time.Millisecond
	DefaultWindows = 8
	// MaxWindows bounds the ring so the decay power table and the
	// serialization stay small.
	MaxWindows = 64
)

// Config sizes a Table.
type Config struct {
	// Types is the number of transaction types; pairs are unordered
	// (type_i, type_j), so the table has Types·(Types+1)/2 cells.
	Types int
	// Window is the bucket width in simulated time (0 = DefaultWindow).
	Window time.Duration
	// Windows is the ring length: events older than Windows·Window weigh
	// zero and are discarded (0 = DefaultWindows; max MaxWindows).
	Windows int
	// Decay is the per-window weight multiplier in [0, 1]: an event aged a
	// windows contributes Decay^a. Decay 0 disables the table — nothing is
	// retained and every rate reads 0 (the degenerate-equivalence knob).
	Decay float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Windows <= 0 {
		c.Windows = DefaultWindows
	}
	return c
}

// Validate reports the first problem with the configuration (after
// defaulting zero fields).
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Types <= 0 {
		return fmt.Errorf("predict: Types %d <= 0", c.Types)
	}
	if c.Windows > MaxWindows {
		return fmt.Errorf("predict: Windows %d > %d", c.Windows, MaxWindows)
	}
	if math.IsNaN(c.Decay) || c.Decay < 0 || c.Decay > 1 {
		return fmt.Errorf("predict: Decay %v outside [0, 1]", c.Decay)
	}
	return nil
}

// Table is the per-type-pair statistics table. Writes (Record, Merge) must
// be externally serialized; reads are pure and safe concurrently with each
// other (but not with writes).
type Table struct {
	cfg    Config
	cells  int
	powers []float64 // powers[a] = Decay^a for a < Windows
	// base[c] is the absolute window index of cell c's bucket 0 (its newest
	// bucket); -1 while the cell has never recorded. Bucket j covers window
	// base[c]−j.
	base []int64
	// counts is cells × Windows × NumKinds, flat.
	counts []uint32
}

// New builds an empty table; it panics on an invalid configuration
// (callers validate configs at the API boundary, not per table).
func New(c Config) *Table {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	c = c.withDefaults()
	t := &Table{
		cfg:    c,
		cells:  c.Types * (c.Types + 1) / 2,
		powers: make([]float64, c.Windows),
		counts: make([]uint32, c.Types*(c.Types+1)/2*c.Windows*NumKinds),
	}
	t.base = make([]int64, t.cells)
	for i := range t.base {
		t.base[i] = -1
	}
	p := 1.0
	for i := range t.powers {
		t.powers[i] = p
		p *= c.Decay
	}
	return t
}

// Config returns the table's (defaulted) configuration.
func (t *Table) Config() Config { return t.cfg }

// clampType folds an out-of-range type (service submissions default to 0,
// which is always valid; anything else is a caller bug we degrade on
// rather than panic in the scheduling hot path) into the keyed range.
func (t *Table) clampType(ty int) int {
	if ty < 0 {
		return 0
	}
	if ty >= t.cfg.Types {
		return t.cfg.Types - 1
	}
	return ty
}

// cellOf returns the triangular index of the unordered pair (a, b).
func (t *Table) cellOf(a, b int) int {
	a, b = t.clampType(a), t.clampType(b)
	if a > b {
		a, b = b, a
	}
	return b*(b+1)/2 + a
}

// windowOf returns the absolute window index of a simulated instant.
func (t *Table) windowOf(now time.Duration) int64 {
	if now < 0 {
		now = 0
	}
	return int64(now / t.cfg.Window)
}

func (t *Table) bucket(cell, j int) []uint32 {
	off := (cell*t.cfg.Windows + j) * NumKinds
	return t.counts[off : off+NumKinds]
}

// shiftTo advances cell's bucket 0 to window w (w ≥ base), discarding
// buckets that age past the ring.
func (t *Table) shiftTo(cell int, w int64) {
	b := t.base[cell]
	if b < 0 {
		t.base[cell] = w
		return
	}
	if w <= b {
		return
	}
	shift := w - b
	K := t.cfg.Windows
	if shift >= int64(K) {
		row := t.counts[cell*K*NumKinds : (cell+1)*K*NumKinds]
		for i := range row {
			row[i] = 0
		}
	} else {
		for j := K - 1; j >= int(shift); j-- {
			copy(t.bucket(cell, j), t.bucket(cell, j-int(shift)))
		}
		for j := 0; j < int(shift); j++ {
			bk := t.bucket(cell, j)
			for i := range bk {
				bk[i] = 0
			}
		}
	}
	t.base[cell] = w
}

// Record counts one event of kind k for the pair (a, b) at simulated
// instant now. With Decay 0 the table retains nothing.
func (t *Table) Record(k Kind, a, b int, now time.Duration) {
	if t.cfg.Decay == 0 {
		return
	}
	cell := t.cellOf(a, b)
	w := t.windowOf(now)
	t.shiftTo(cell, w)
	if age := t.base[cell] - w; age > 0 {
		// An event behind the cell's newest window (merge-fed tables only;
		// a single engine's clock never runs backwards): file it into its
		// own bucket, or drop it once it is past the ring — exactly what a
		// timely Record would have converged to.
		if age >= int64(t.cfg.Windows) {
			return
		}
		t.bucket(cell, int(age))[k]++
		return
	}
	t.bucket(cell, 0)[k]++
}

// count returns the decayed count of kind k in cell at now.
func (t *Table) count(cell int, k Kind, now time.Duration) float64 {
	b := t.base[cell]
	if b < 0 {
		return 0
	}
	w := t.windowOf(now)
	var sum float64
	for j := 0; j < t.cfg.Windows; j++ {
		c := t.bucket(cell, j)[k]
		if c == 0 {
			continue
		}
		age := w - (b - int64(j))
		if age < 0 || age >= int64(t.cfg.Windows) {
			continue
		}
		sum += float64(c) * t.powers[age]
	}
	return sum
}

// Count returns the decayed count of kind k for the pair (a, b) as of the
// simulated instant now. Pure: depends only on the recorded events and now.
func (t *Table) Count(k Kind, a, b int, now time.Duration) float64 {
	return t.count(t.cellOf(a, b), k, now)
}

// rate computes the conflict rate of one cell: decayed (blocks + wounds)
// over decayed (blocks + wounds + commits); 0 with no observations.
// Restarts are tracked (Count) but deliberately excluded — a wound already
// counted the conflict, and restarts also arise from faults and deadline
// drops that say nothing about this pair.
func (t *Table) rate(cell int, now time.Duration) float64 {
	conf := t.count(cell, Block, now) + t.count(cell, Wound, now)
	if conf == 0 {
		return 0
	}
	return conf / (conf + t.count(cell, Commit, now))
}

// Rate returns the observed conflict rate for the pair (a, b) in [0, 1] as
// of now. Pure; safe for concurrent readers.
func (t *Table) Rate(a, b int, now time.Duration) float64 {
	return t.rate(t.cellOf(a, b), now)
}

// Merge adds src's counts into t, bucket-aligned by absolute window; both
// tables must share one configuration. Merging per-shard tables in any
// fixed order yields a table bit-identical to one that recorded every
// shard's events itself (integer sums are order-free).
func (t *Table) Merge(src *Table) {
	if src == nil {
		return
	}
	if t.cfg != src.cfg {
		panic(fmt.Sprintf("predict: merging mismatched tables (%+v vs %+v)", t.cfg, src.cfg))
	}
	K := t.cfg.Windows
	for cell := 0; cell < t.cells; cell++ {
		sb := src.base[cell]
		if sb < 0 {
			continue
		}
		nb := sb
		if t.base[cell] > nb {
			nb = t.base[cell]
		}
		t.shiftTo(cell, nb)
		off := nb - sb // ≥ 0: src bucket j lands at t bucket j+off
		for j := 0; j < K; j++ {
			jt := j + int(off)
			if jt >= K {
				break
			}
			dst, s := t.bucket(cell, jt), src.bucket(cell, j)
			for i := range dst {
				dst[i] += s[i]
			}
		}
	}
}

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	c := New(t.cfg)
	copy(c.base, t.base)
	copy(c.counts, t.counts)
	return c
}

// Reset empties the table in place.
func (t *Table) Reset() {
	for i := range t.base {
		t.base[i] = -1
	}
	for i := range t.counts {
		t.counts[i] = 0
	}
}

// pairOf inverts cellOf: the (lo, hi) pair of a triangular index.
func (t *Table) pairOf(cell int) (int, int) {
	hi := int((math.Sqrt(float64(8*cell+1)) - 1) / 2)
	// Float inversion can land one off at large indices; correct exactly.
	for hi*(hi+1)/2 > cell {
		hi--
	}
	for (hi+1)*(hi+2)/2 <= cell {
		hi++
	}
	return cell - hi*(hi+1)/2, hi
}

// ActivePairs returns how many pairs have a nonzero decayed observation
// count (of any kind) as of now.
func (t *Table) ActivePairs(now time.Duration) int {
	n := 0
	for cell := 0; cell < t.cells; cell++ {
		if t.base[cell] < 0 {
			continue
		}
		total := 0.0
		for k := Kind(0); k < NumKinds; k++ {
			total += t.count(cell, k, now)
		}
		if total > 0 {
			n++
		}
	}
	return n
}

// PairRate is one pair's observability snapshot (for /metrics).
type PairRate struct {
	// A ≤ B are the pair's transaction types.
	A int `json:"a"`
	B int `json:"b"`
	// Rate is the observed conflict rate in [0, 1].
	Rate float64 `json:"rate"`
	// Conflicts and Commits are the decayed numerator and denominator
	// complement behind Rate.
	Conflicts float64 `json:"conflicts"`
	Commits   float64 `json:"commits"`
}

// TopPairs returns the n pairs with the highest conflict rate (ties broken
// by conflict count, then pair index — a total order, so the result is
// deterministic). Pairs with no conflicts are omitted.
func (t *Table) TopPairs(now time.Duration, n int) []PairRate {
	var out []PairRate
	for cell := 0; cell < t.cells; cell++ {
		if t.base[cell] < 0 {
			continue
		}
		conf := t.count(cell, Block, now) + t.count(cell, Wound, now)
		if conf == 0 {
			continue
		}
		a, b := t.pairOf(cell)
		out = append(out, PairRate{
			A: a, B: b,
			Rate:      t.rate(cell, now),
			Conflicts: conf,
			Commits:   t.count(cell, Commit, now),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rate != out[j].Rate {
			return out[i].Rate > out[j].Rate
		}
		if out[i].Conflicts != out[j].Conflicts {
			return out[i].Conflicts > out[j].Conflicts
		}
		if out[i].B != out[j].B {
			return out[i].B < out[j].B
		}
		return out[i].A < out[j].A
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
