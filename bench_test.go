// Benchmarks: one per paper table and figure. Each benchmark runs a
// scaled-down version of the corresponding experiment (fewer seeds and
// transactions, same sweep) so `go test -bench=.` regenerates every
// result's shape in seconds; full paper fidelity is `rtexp -exp all`.
//
// Custom metrics attached to the relevant benchmarks:
//
//	miss%          mean miss percent across the sweep (CCA variant)
//	improve%       CCA's improvement over EDF-HP at the most contended point
//	restarts/txn   restarts per transaction at the most contended point
package rtdbs_test

import (
	"testing"

	"repro"
)

const (
	benchSeeds = 2
	benchCount = 150
)

// runExperiment executes a (scaled) experiment sweep once per benchmark
// iteration.
func runExperiment(b *testing.B, id string) *rtdbs.ExperimentResult {
	b.Helper()
	def, ok := rtdbs.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var res *rtdbs.ExperimentResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = rtdbs.RunExperiment(def, rtdbs.ExperimentOptions{Seeds: benchSeeds, Count: benchCount})
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// reportComparison attaches the CCA-vs-EDF metrics of the last sweep point
// (the most contended) to the benchmark output.
func reportComparison(b *testing.B, res *rtdbs.ExperimentResult) {
	b.Helper()
	last := len(res.Agg) - 1
	edf, cca := res.Summary(last, 0), res.Summary(last, 1)
	b.ReportMetric(cca.MissPercent, "cca-miss%")
	b.ReportMetric(edf.MissPercent, "edf-miss%")
	if edf.MissPercent > 0 {
		b.ReportMetric((edf.MissPercent-cca.MissPercent)/edf.MissPercent*100, "improve%")
	}
	b.ReportMetric(cca.RestartsPerTxn, "cca-restarts/txn")
	b.ReportMetric(edf.RestartsPerTxn, "edf-restarts/txn")
}

// BenchmarkTable1BaseMM runs the Table 1 base configuration (single point).
func BenchmarkTable1BaseMM(b *testing.B) {
	cfg := rtdbs.MainMemoryConfig(rtdbs.CCA, 1)
	cfg.Workload.Count = benchCount
	cfg.Workload.ArrivalRate = 8
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rtdbs.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2BaseDisk runs the Table 2 base configuration.
func BenchmarkTable2BaseDisk(b *testing.B) {
	cfg := rtdbs.DiskConfig(rtdbs.CCA, 1)
	cfg.Workload.Count = benchCount
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rtdbs.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4aMissVsRateMM — Figure 4.a (and 4.b's inputs): miss percent
// vs arrival rate, EDF-HP vs CCA, main memory.
func BenchmarkFig4aMissVsRateMM(b *testing.B) {
	res := runExperiment(b, "4a")
	reportComparison(b, res)
}

// BenchmarkFig4bImprovementMM — Figure 4.b: improvement of CCA over EDF-HP.
func BenchmarkFig4bImprovementMM(b *testing.B) {
	res := runExperiment(b, "4b")
	reportComparison(b, res)
}

// BenchmarkFig4cRestartsMM — Figure 4.c: restarts per transaction vs rate.
func BenchmarkFig4cRestartsMM(b *testing.B) {
	res := runExperiment(b, "4c")
	reportComparison(b, res)
}

// BenchmarkFig4dHighVariance — Figure 4.d: miss percent with 0.4/4/40 ms
// update-time classes.
func BenchmarkFig4dHighVariance(b *testing.B) {
	res := runExperiment(b, "4d")
	reportComparison(b, res)
}

// BenchmarkFig4eHighVarianceImprovement — Figure 4.e.
func BenchmarkFig4eHighVarianceImprovement(b *testing.B) {
	res := runExperiment(b, "4e")
	reportComparison(b, res)
}

// BenchmarkFig4fDBSizeMM — Figure 4.f: miss percent vs database size at
// 10 tr/s.
func BenchmarkFig4fDBSizeMM(b *testing.B) {
	res := runExperiment(b, "4f")
	reportComparison(b, res)
}

// BenchmarkFig5aPenaltyWeightMM — Figure 5.a: penalty-weight stability
// (main memory, 5 and 8 tr/s CCA curves).
func BenchmarkFig5aPenaltyWeightMM(b *testing.B) {
	res := runExperiment(b, "5a")
	// Stability: spread of miss% across weights at the 8 TPS curve.
	min, max := 1e18, -1e18
	for xi := range res.Agg {
		m := res.Summary(xi, 1).MissPercent
		if m < min {
			min = m
		}
		if m > max {
			max = m
		}
	}
	b.ReportMetric(max-min, "miss%-spread")
}

// BenchmarkFig5bMissVsRateDisk — Figure 5.b: miss percent vs arrival rate,
// disk resident.
func BenchmarkFig5bMissVsRateDisk(b *testing.B) {
	res := runExperiment(b, "5b")
	reportComparison(b, res)
}

// BenchmarkFig5cRestartsDisk — Figure 5.c: restarts per transaction vs
// rate on disk (EDF-HP monotone rising, CCA flat).
func BenchmarkFig5cRestartsDisk(b *testing.B) {
	res := runExperiment(b, "5c")
	reportComparison(b, res)
}

// BenchmarkFig5dImprovementDisk — Figure 5.d.
func BenchmarkFig5dImprovementDisk(b *testing.B) {
	res := runExperiment(b, "5d")
	reportComparison(b, res)
}

// BenchmarkFig5eDBSizeDisk — Figure 5.e: miss percent vs database size at
// 4 tr/s on disk.
func BenchmarkFig5eDBSizeDisk(b *testing.B) {
	res := runExperiment(b, "5e")
	reportComparison(b, res)
}

// BenchmarkFig5fPenaltyWeightDisk — Figure 5.f: penalty-weight stability on
// disk (4 tr/s).
func BenchmarkFig5fPenaltyWeightDisk(b *testing.B) {
	res := runExperiment(b, "5f")
	min, max := 1e18, -1e18
	for xi := range res.Agg {
		m := res.Summary(xi, 0).MissPercent
		if m < min {
			min = m
		}
		if m > max {
			max = m
		}
	}
	b.ReportMetric(max-min, "miss%-spread")
}

// --- ablation benches (DESIGN.md §4 extensions) -------------------------

// BenchmarkAblationPolicies compares all eight policies on the base
// main-memory workload.
func BenchmarkAblationPolicies(b *testing.B) {
	runExperiment(b, "ablation-policies")
}

// BenchmarkAblationProportionalRecovery scales rollback cost with executed
// work (paper §6: CCA should widen its lead).
func BenchmarkAblationProportionalRecovery(b *testing.B) {
	res := runExperiment(b, "ablation-recovery")
	reportComparison(b, res)
}

// BenchmarkAblationMultiprocessor runs the §6 multiprocessor extension.
func BenchmarkAblationMultiprocessor(b *testing.B) {
	res := runExperiment(b, "ablation-mp")
	reportComparison(b, res)
}

// BenchmarkAblationReadLocks enables shared locks (paper §6).
func BenchmarkAblationReadLocks(b *testing.B) {
	res := runExperiment(b, "ablation-readlocks")
	reportComparison(b, res)
}

// BenchmarkAblationDiskQueue compares FCFS and priority disk queueing
// under EDF-HP.
func BenchmarkAblationDiskQueue(b *testing.B) {
	runExperiment(b, "ablation-diskqueue")
}

// BenchmarkAblationFirmDeadlines runs the firm-deadline model (late
// transactions dropped).
func BenchmarkAblationFirmDeadlines(b *testing.B) {
	res := runExperiment(b, "ablation-firm")
	reportComparison(b, res)
}

// BenchmarkAblationMultiDisk stripes the database over two disks.
func BenchmarkAblationMultiDisk(b *testing.B) {
	runExperiment(b, "ablation-multidisk")
}

// BenchmarkAblationConditional simulates conditionally-conflicting
// transactions (decision points), the paper's §6 unsimulated case.
func BenchmarkAblationConditional(b *testing.B) {
	runExperiment(b, "ablation-conditional")
}

// BenchmarkEngineSingleRun measures raw simulator throughput (one run of
// the Table 1 base workload, full 1000 transactions).
func BenchmarkEngineSingleRun(b *testing.B) {
	cfg := rtdbs.MainMemoryConfig(rtdbs.CCA, 1)
	cfg.Workload.ArrivalRate = 8
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rtdbs.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreanalysis measures the §3.2.2 relation computation on the
// paper's Figure 1 programs.
func BenchmarkPreanalysis(b *testing.B) {
	prog := &rtdbs.Program{
		Name: "A",
		Root: &rtdbs.Node{
			Label: "A", Accesses: rtdbs.NewItemSet(0),
			Children: []*rtdbs.Node{
				{Label: "Aa", Accesses: rtdbs.NewItemSet(1, 2, 3)},
				{Label: "Ab", Accesses: rtdbs.NewItemSet(4, 5, 6)},
			},
		},
	}
	bp := rtdbs.FlatProgram("B", 1, 2, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := rtdbs.AnalyzeProgram(prog)
		if err != nil {
			b.Fatal(err)
		}
		bb, err := rtdbs.AnalyzeProgram(bp)
		if err != nil {
			b.Fatal(err)
		}
		sa := rtdbs.StateAt(a, "A")
		sb := rtdbs.StateAt(bb, "B")
		if rtdbs.ConflictBetween(sa, sb) != rtdbs.ConditionallyConflict {
			b.Fatal("unexpected classification")
		}
	}
}
