// Package rtdbs is a Go implementation of the real-time transaction
// scheduling system of Hong, Johnson and Chakravarthy, "Real-Time
// Transaction Scheduling: A Cost Conscious Approach" (UF-CIS-TR-92-043,
// 1992 / SIGMOD 1993).
//
// The paper's contribution — the Cost Conscious Approach (CCA) — assigns
// each soft-deadline transaction the dynamic priority
//
//	Pr(T) = -(deadline + w · penaltyOfConflict(T))
//
// where the penalty of conflict is the work that would be thrown away
// (effective service plus rollback time of every partially executed
// transaction that is unsafe with respect to T) if T ran to commit right
// now. Conflicts are resolved by wounding (the running transaction aborts
// conflicting lock holders, so CCA never waits on data and cannot
// deadlock), and during the IO wait of the highest-priority transaction the
// CPU is given only to transactions that cannot conflict with partially
// executed ones, eliminating "noncontributing executions".
//
// This package is the stable facade over the implementation:
//
//   - Run / RunSeeds execute single-configuration simulations
//     (Config, MainMemoryConfig, DiskConfig, the policy constants);
//   - Experiments / RunExperiment / ExperimentByID regenerate every table
//     and figure of the paper's evaluation;
//   - the pre-analysis types (Program, Analyze, ConflictBetween, SafetyOf)
//     expose the transaction-tree formalism of paper §3.2.2.
//
// A minimal example:
//
//	cfg := rtdbs.MainMemoryConfig(rtdbs.CCA, 1)
//	cfg.Workload.ArrivalRate = 8
//	res, err := rtdbs.Run(cfg)
//	if err != nil { ... }
//	fmt.Printf("miss%%=%.1f restarts/txn=%.2f\n", res.MissPercent, res.RestartsPerTxn)
package rtdbs

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/workload"
)

// Scheduling policies.
const (
	// CCA is the paper's cost conscious approach.
	CCA = core.CCA
	// EDFHP is earliest-deadline-first with High Priority (wound)
	// conflict resolution — the paper's baseline.
	EDFHP = core.EDFHP
	// EDFWP is earliest-deadline-first with Wait Promote (priority
	// inheritance, non-abortive) conflict resolution.
	EDFWP = core.EDFWP
	// LSFHP is least-slack-first with High Priority conflict resolution.
	LSFHP = core.LSFHP
	// EDFCR is earliest-deadline-first with Conditional Restart conflict
	// resolution (block if the holder fits in the requester's slack).
	EDFCR = core.EDFCR
	// AED is Adaptive Earliest Deadline (HIT/MISS feedback groups).
	AED = core.AED
	// PCP is the Priority Ceiling Protocol (pure wait + inheritance;
	// main-memory configurations only).
	PCP = core.PCP
	// FCFS is the non-real-time first-come-first-served control.
	FCFS = core.FCFS
	// CCAP is CCA with the observed-conflict-rate penalty scaling
	// (extension; Config.Predict configures it).
	CCAP = core.CCAP
	// CCAT is CCAP with the self-tuning penalty weight (extension).
	CCAT = core.CCAT
)

// Core simulation types.
type (
	// PolicyKind names a scheduling algorithm.
	PolicyKind = core.PolicyKind
	// Config fully describes one simulation run.
	Config = core.Config
	// Engine is a single simulation run (use New for trace access;
	// plain Run covers most uses).
	Engine = core.Engine
	// Result holds the derived metrics of one run.
	Result = metrics.Result
	// Aggregate accumulates results across seeds.
	Aggregate = metrics.Aggregate
	// WorkloadParams describes workload generation (paper Tables 1-2).
	WorkloadParams = workload.Params
	// Workload is a fully generated run's transactions.
	Workload = workload.Workload
	// TxnSpec is one generated transaction instance.
	TxnSpec = workload.Spec
	// PredictConfig tunes the conflict-prediction layer of the CCAP and
	// CCAT policies (Config.Predict).
	PredictConfig = core.PredictConfig
	// PredictSnapshot is the conflict-prediction observability view
	// (current w, tuner steps, top conflicting type pairs).
	PredictSnapshot = core.PredictSnapshot
)

// Pre-analysis types (paper §3.2.2).
type (
	// Item identifies a database object.
	Item = txn.Item
	// ItemSet is a set of database items.
	ItemSet = txn.Set
	// Node is a vertex of a transaction tree.
	Node = txn.Node
	// Program is a transaction program: a tree of decision points.
	Program = txn.Program
	// Analysis holds a program's derived hasaccessed/mightaccess sets.
	Analysis = txn.Analysis
	// TxnState is a transaction's position within its program.
	TxnState = txn.State
	// ConflictClass classifies pairwise conflicts
	// (conflict / conditionally conflict / no conflict).
	ConflictClass = txn.ConflictClass
	// SafetyClass classifies rollback safety
	// (safe / conditionally unsafe / unsafe).
	SafetyClass = txn.SafetyClass
)

// Structured tracing (Engine.SetRecorder).
type (
	// TraceEvent is one engine transition (arrival, dispatch, wound, ...).
	TraceEvent = trace.Event
	// TraceKind is a trace event type.
	TraceKind = trace.Kind
	// TraceBuffer records trace events in memory, with optional filter
	// and capacity bound.
	TraceBuffer = trace.Buffer
)

// Trace event kinds.
const (
	TraceArrival  = trace.Arrival
	TraceDispatch = trace.Dispatch
	TracePreempt  = trace.Preempt
	TraceWound    = trace.Wound
	TraceBlock    = trace.Block
	TraceWake     = trace.Wake
	TraceIOStart  = trace.IOStart
	TraceIODone   = trace.IODone
	TraceDeadlock = trace.Deadlock
	TraceCommit   = trace.Commit
	TraceReject   = trace.Reject
)

// Robustness extensions: deterministic fault injection, overload control
// and the runtime safety oracle.
type (
	// FaultPlan is a deterministic fault-injection plan (Config.Fault);
	// the zero value injects nothing and leaves runs bit-identical.
	FaultPlan = fault.Plan
	// FaultWindow is a half-open simulated-time window of a plan.
	FaultWindow = fault.Window
	// FaultBurst is an arrival-burst window (rate multiplier).
	FaultBurst = fault.Burst
	// AdmissionConfig configures the engine's overload controller
	// (Config.Admission).
	AdmissionConfig = core.AdmissionConfig
	// AdmissionMode selects the admission rejection rule.
	AdmissionMode = core.AdmissionMode
	// Oracle is the opt-in runtime safety monitor
	// (Engine.EnableOracle); it fails a run at the first violation of
	// the paper's correctness results.
	Oracle = core.Oracle
	// RunFailure describes one experiment seed run that failed even
	// after retries (ExperimentResult.Failures).
	RunFailure = experiment.RunFailure
)

// Admission modes.
const (
	// AdmitAll disables admission control (the default).
	AdmitAll = core.AdmitAll
	// RejectNewest sheds arrivals once MaxLive transactions are live.
	RejectNewest = core.RejectNewest
	// RejectInfeasible sheds arrivals whose deadline is already
	// infeasible given the live backlog.
	RejectInfeasible = core.RejectInfeasible
)

// ParseFaultPlan decodes and validates a JSON fault plan (durations are
// nanoseconds; unknown fields are rejected).
func ParseFaultPlan(data []byte) (FaultPlan, error) { return fault.ParsePlan(data) }

// Pre-analysis classifications.
const (
	NoConflict            = txn.NoConflict
	ConditionallyConflict = txn.ConditionallyConflict
	Conflict              = txn.Conflict
	Safe                  = txn.Safe
	ConditionallyUnsafe   = txn.ConditionallyUnsafe
	Unsafe                = txn.Unsafe
)

// Experiment harness types.
type (
	// Experiment is one parameter sweep reproducing paper figures.
	Experiment = experiment.Definition
	// ExperimentResult holds a sweep's aggregated metrics.
	ExperimentResult = experiment.Result
	// ExperimentOptions tunes a sweep run (seed/count overrides,
	// worker pool size, progress callback).
	ExperimentOptions = experiment.Options
	// Table is a rendered result table (text / markdown / CSV).
	Table = report.Table
)

// MainMemoryConfig returns the paper's §4 base configuration (Table 1).
func MainMemoryConfig(p PolicyKind, seed int64) Config {
	return core.MainMemoryConfig(p, seed)
}

// DiskConfig returns the paper's §5 base configuration (Table 2).
func DiskConfig(p PolicyKind, seed int64) Config { return core.DiskConfig(p, seed) }

// DefaultPredictConfig returns the default knobs for the conflict-
// prediction layer behind the CCAP and CCAT policies (Config.Predict).
func DefaultPredictConfig() PredictConfig { return core.DefaultPredictConfig() }

// Policies lists every implemented scheduling policy.
func Policies() []PolicyKind { return core.Policies() }

// New builds an Engine for one run; most callers can use Run directly.
func New(cfg Config) (*Engine, error) { return core.New(cfg) }

// NewWithWorkload builds an Engine over a caller-supplied workload (custom
// scenarios, trace replay).
func NewWithWorkload(cfg Config, wl *Workload) (*Engine, error) {
	return core.NewWithWorkload(cfg, wl)
}

// Run executes one simulation and returns its metrics.
func Run(cfg Config) (Result, error) {
	e, err := core.New(cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Run()
}

// RunSeeds executes the configuration once per seed and aggregates the
// results, the way the paper averages each configuration over 10 (main
// memory) or 30 (disk) random runs.
func RunSeeds(cfg Config, seeds []int64) (*Aggregate, error) {
	agg := &Aggregate{}
	for _, s := range seeds {
		c := cfg
		c.Seed = s
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		agg.Add(res)
	}
	return agg, nil
}

// Seeds returns 1..n, the seed sets used throughout the reproduction.
func Seeds(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// GenerateWorkload draws a workload without running it (inspection, replay,
// custom engines).
func GenerateWorkload(p WorkloadParams, seed int64) (*Workload, error) {
	return workload.Generate(p, seed)
}

// ReadWorkloadJSON loads an archived workload written by
// Workload.WriteJSON, validating it for replay.
func ReadWorkloadJSON(r io.Reader) (*Workload, error) { return workload.ReadJSON(r) }

// Experiments returns every defined experiment (paper figures and
// extension ablations).
func Experiments() []Experiment { return experiment.All() }

// ExperimentByID resolves a sweep ID ("mm-rate") or figure ID ("4a",
// "fig5c") to its experiment definition.
func ExperimentByID(id string) (Experiment, bool) { return experiment.ByID(id) }

// RunExperiment executes a sweep and returns its aggregated results;
// call Tables on the result to render its figures.
func RunExperiment(def Experiment, opt ExperimentOptions) (*ExperimentResult, error) {
	return experiment.Run(context.Background(), def, opt)
}

// RunExperimentContext is RunExperiment under a context: cancellation stops
// scheduling further runs, drains in-flight ones (checkpointing them when a
// checkpoint is configured) and returns the context's error.
func RunExperimentContext(ctx context.Context, def Experiment, opt ExperimentOptions) (*ExperimentResult, error) {
	return experiment.Run(ctx, def, opt)
}

// Table1 and Table2 render the paper's base-parameter tables.
func Table1() *Table { return experiment.Table1() }

// Table2 renders the paper's disk-resident base parameters.
func Table2() *Table { return experiment.Table2() }

// Pre-analysis functions (paper §3.2.2).

// AnalyzeProgram validates a transaction program and computes its
// hasaccessed/mightaccess tables.
func AnalyzeProgram(p *Program) (*Analysis, error) { return txn.Analyze(p) }

// StateAt positions a transaction at a node of its analysed program.
func StateAt(a *Analysis, label string) TxnState { return txn.At(a, label) }

// ConflictBetween classifies the conflict relation between two transaction
// states.
func ConflictBetween(a, b TxnState) ConflictClass { return txn.ConflictBetween(a, b) }

// SafetyOf classifies whether the partially executed transaction `part`
// would have to be rolled back to schedule `sched`.
func SafetyOf(part, sched TxnState) SafetyClass { return txn.SafetyOf(part, sched) }

// FlatProgram builds a straight-line transaction program (no decision
// points) accessing the given items.
func FlatProgram(name string, items ...Item) *Program { return txn.Flat(name, items...) }

// NewItemSet builds an item set.
func NewItemSet(items ...Item) ItemSet { return txn.NewSet(items...) }

// ParseProgram reads a transaction program from the indentation-based text
// format ("program A\nnode A accesses 0\n  node Aa accesses 1 2 3\n...").
func ParseProgram(r io.Reader) (*Program, error) { return txn.ParseProgram(r) }

// WriteProgram renders a program in ParseProgram's text format.
func WriteProgram(w io.Writer, p *Program) error { return txn.WriteProgram(w, p) }
