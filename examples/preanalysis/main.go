// Pre-analysis example: the paper's transaction-tree formalism (§3.2.2)
// applied to a small banking workload with decision points.
//
// A funds-transfer program reads the source account and only then decides
// whether it touches the overdraft ledger; an audit program scans a fixed
// set of accounts. The analysis shows which pairs can run concurrently,
// which must conflict, and — for partially executed transactions — who
// would have to be rolled back, exactly the information CCA's penalty of
// conflict and IOwait-schedule consume.
package main

import (
	"fmt"
	"log"

	"repro"
)

// Database items.
const (
	AcctAlice rtdbs.Item = iota
	AcctBob
	AcctCarol
	OverdraftLedger
	FeeSchedule
	AuditLog
)

func main() {
	// transfer(Alice -> Bob): reads Alice, then either the happy path
	// (update both accounts) or the overdraft path (also touch the
	// overdraft ledger and fee schedule).
	transfer := &rtdbs.Program{
		Name: "transfer",
		Root: &rtdbs.Node{
			Label:    "transfer",
			Accesses: rtdbs.NewItemSet(AcctAlice),
			Children: []*rtdbs.Node{
				{Label: "transfer/ok", Accesses: rtdbs.NewItemSet(AcctBob)},
				{Label: "transfer/overdraft", Accesses: rtdbs.NewItemSet(AcctBob, OverdraftLedger, FeeSchedule)},
			},
		},
	}

	// audit: straight-line scan of Carol's account into the audit log.
	audit := rtdbs.FlatProgram("audit", AcctCarol, AuditLog)

	// feeUpdate: straight-line update of the fee schedule.
	feeUpdate := rtdbs.FlatProgram("feeUpdate", FeeSchedule)

	at, err := rtdbs.AnalyzeProgram(transfer)
	if err != nil {
		log.Fatal(err)
	}
	aa, err := rtdbs.AnalyzeProgram(audit)
	if err != nil {
		log.Fatal(err)
	}
	af, err := rtdbs.AnalyzeProgram(feeUpdate)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Derived access sets of the transfer program:")
	for _, label := range at.Labels() {
		fmt.Printf("  %-20s hasaccessed=%v mightaccess=%v\n",
			label, at.HasAccessed(label), at.MightAccess(label))
	}

	root := rtdbs.StateAt(at, "transfer")
	ok := rtdbs.StateAt(at, "transfer/ok")
	over := rtdbs.StateAt(at, "transfer/overdraft")
	auditSt := rtdbs.StateAt(aa, "audit")
	feeSt := rtdbs.StateAt(af, "feeUpdate")

	fmt.Println("\nConflict classification (symmetric):")
	show := func(name string, a, b rtdbs.TxnState) {
		fmt.Printf("  %-34s %v\n", name, rtdbs.ConflictBetween(a, b))
	}
	show("transfer vs audit:", root, auditSt)             // disjoint: no conflict
	show("transfer vs feeUpdate:", root, feeSt)           // depends on the branch
	show("transfer/ok vs feeUpdate:", ok, feeSt)          // happy path avoids fees
	show("transfer/overdraft vs feeUpdate:", over, feeSt) // overdraft needs fees

	fmt.Println("\nSafety of a partially executed feeUpdate wrt scheduling transfer:")
	fmt.Printf("  before transfer's decision point: %v\n", rtdbs.SafetyOf(feeSt, root))
	fmt.Printf("  after the happy-path branch:      %v\n", rtdbs.SafetyOf(feeSt, ok))
	fmt.Printf("  after the overdraft branch:       %v\n", rtdbs.SafetyOf(feeSt, over))

	fmt.Println("\nScheduling consequence:")
	fmt.Println("  - audit can always run during a transfer's IO wait (no conflict);")
	fmt.Println("  - feeUpdate conditionally conflicts with a fresh transfer, so CCA's")
	fmt.Println("    IOwait-schedule will not start it while a transfer is partially")
	fmt.Println("    executed - unless the transfer has already taken its happy path.")
}
