// Telecom example: a disk-resident call-routing database, the embedded
// real-time setting the paper's introduction motivates.
//
// Call-setup transactions must read routing entries (sometimes from disk)
// and update trunk allocations before the signalling deadline expires.
// Billing-record writers share the same tables. On a disk-resident
// database the scheduler's IO-wait behaviour dominates: EDF-HP runs
// conflicting work during IO waits ("noncontributing executions") and pays
// for it in restarts; CCA's IOwait-schedule only admits compatible work.
//
// The example sweeps the call arrival rate and prints the paper's three
// headline metrics for both policies.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("Call-routing RTDB (disk resident, Table 2 parameters, 64-entry routing table)")
	fmt.Printf("%-6s  %-28s  %-28s\n", "", "EDF-HP", "CCA")
	fmt.Printf("%-6s  %8s %9s %9s  %8s %9s %9s\n",
		"rate", "miss%", "late(ms)", "rst/txn", "miss%", "late(ms)", "rst/txn")

	for _, rate := range []float64{2, 4, 6} {
		row := fmt.Sprintf("%-6.0f", rate)
		for _, policy := range []rtdbs.PolicyKind{rtdbs.EDFHP, rtdbs.CCA} {
			cfg := rtdbs.DiskConfig(policy, 1)
			cfg.Workload.ArrivalRate = rate
			cfg.Workload.DBSize = 64      // routing + trunk tables
			cfg.Workload.UpdatesMean = 12 // entries touched per call setup
			cfg.Workload.UpdatesStd = 4
			cfg.Workload.Count = 300

			agg, err := rtdbs.RunSeeds(cfg, rtdbs.Seeds(15))
			if err != nil {
				log.Fatal(err)
			}
			s := agg.Summary()
			row += fmt.Sprintf("  %8.2f %9.2f %9.3f", s.MissPercent, s.MeanLatenessMs, s.RestartsPerTxn)
		}
		fmt.Println(row)
	}

	fmt.Println("\nDuring a call-setup's disk read, CCA admits only transactions that")
	fmt.Println("cannot touch the partially executed setup's tables, so no work is")
	fmt.Println("thrown away when the read completes (paper §3.3.2, Figure 5).")
}
