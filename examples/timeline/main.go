// Timeline example: inspect a single contended run through the structured
// event trace — who preempted whom, which wounds happened at what
// priorities, and where CCA's IOwait rule left the CPU idle instead of
// admitting conflicting work.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := rtdbs.DiskConfig(rtdbs.CCA, 7)
	cfg.Workload.Count = 12
	cfg.Workload.ArrivalRate = 6

	e, err := rtdbs.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	buf := &rtdbs.TraceBuffer{}
	e.SetRecorder(buf)
	res, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Structured timeline of a 12-transaction disk-resident run under CCA:")
	for _, ev := range buf.Events() {
		fmt.Println("  " + ev.String())
	}

	fmt.Printf("\nsummary: %s\n", res)
	fmt.Printf("events: %d dispatches (%d secondary), %d wounds, %d IO waits\n",
		buf.Count(rtdbs.TraceDispatch), countSecondary(buf),
		buf.Count(rtdbs.TraceWound), buf.Count(rtdbs.TraceIOStart))

	// The property the paper proves (Lemma 1): no wound ever goes from a
	// lower-priority transaction to a higher-priority one.
	for _, w := range buf.OfKind(rtdbs.TraceWound) {
		if w.Priority < w.OtherPriority {
			fmt.Printf("priority reversal detected: %s\n", w)
		}
	}
	fmt.Println("no priority reversals (Lemma 1 holds on this trace)")
}

func countSecondary(buf *rtdbs.TraceBuffer) int {
	n := 0
	for _, ev := range buf.OfKind(rtdbs.TraceDispatch) {
		if ev.Secondary {
			n++
		}
	}
	return n
}
