// Trading example: a hand-built stock-trading workload on a custom engine.
//
// A real-time brokerage book keeps positions for a handful of hot symbols
// and many cold ones. Order transactions update 2-4 positions and must
// settle within tight deadlines; a periodic risk report sweeps a large
// slice of the book with a loose deadline. Hot-symbol contention makes the
// scheduler's wound/wait decisions matter: EDF-HP keeps killing the risk
// report, while CCA prices the report's accumulated work into the orders'
// priorities and stops the thrashing.
//
// This example shows NewWithWorkload: building transaction instances by
// hand instead of using the generator.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

const (
	dbSize     = 120 // positions in the book
	hotSymbols = 6   // heavily traded positions 0..5
	orders     = 220
)

func buildBook(seed int64) *rtdbs.Workload {
	rng := rand.New(rand.NewSource(seed))
	p := rtdbs.MainMemoryConfig(rtdbs.CCA, seed).Workload
	p.DBSize = dbSize
	p.Count = orders + 4 // orders plus periodic risk reports

	wl := &rtdbs.Workload{Params: p}
	var arrival time.Duration
	nextReport := 400 * time.Millisecond
	reports := 0
	id := 0

	addTxn := func(items []rtdbs.Item, compute, slackFactor time.Duration) {
		res := time.Duration(len(items)) * compute
		wl.Txns = append(wl.Txns, rtdbs.TxnSpec{
			ID:       id,
			Arrival:  arrival,
			Deadline: arrival + res*slackFactor,
			Items:    items,
			Compute:  compute,
		})
		id++
	}

	for len(wl.Txns) < p.Count {
		arrival += time.Duration(rng.ExpFloat64() * float64(13*time.Millisecond))
		if reports < 4 && arrival >= nextReport {
			// Risk report: sweep 40 positions, loose deadline.
			items := make([]rtdbs.Item, 0, 40)
			for _, v := range rng.Perm(dbSize)[:40] {
				items = append(items, rtdbs.Item(v))
			}
			addTxn(items, 2*time.Millisecond, 6)
			reports++
			nextReport += 600 * time.Millisecond
			continue
		}
		// Order: 2-4 positions, biased to the hot symbols, tight deadline.
		n := 2 + rng.Intn(3)
		seen := map[int]bool{}
		items := make([]rtdbs.Item, 0, n)
		for len(items) < n {
			var v int
			if rng.Float64() < 0.7 {
				v = rng.Intn(hotSymbols)
			} else {
				v = hotSymbols + rng.Intn(dbSize-hotSymbols)
			}
			if !seen[v] {
				seen[v] = true
				items = append(items, rtdbs.Item(v))
			}
		}
		addTxn(items, 3*time.Millisecond, 4)
	}
	return wl
}

func main() {
	fmt.Println("Stock trading book: tight-deadline orders vs a sweeping risk report")
	fmt.Printf("%d orders + 4 risk reports over %d positions (%d hot)\n\n", orders, dbSize, hotSymbols)

	for _, policy := range []rtdbs.PolicyKind{rtdbs.EDFHP, rtdbs.CCA, rtdbs.EDFWP} {
		agg := &rtdbs.Aggregate{}
		for seed := int64(1); seed <= 10; seed++ {
			cfg := rtdbs.MainMemoryConfig(policy, seed)
			cfg.Workload.DBSize = dbSize
			cfg.Workload.Count = orders + 4
			e, err := rtdbs.NewWithWorkload(cfg, buildBook(seed))
			if err != nil {
				log.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				log.Fatal(err)
			}
			agg.Add(res)
		}
		s := agg.Summary()
		fmt.Printf("%-7s miss=%5.2f%%  lateness=%7.2f ms  restarts/txn=%.3f  lock-waits=%d deadlocks=%d\n",
			policy, s.MissPercent, s.MeanLatenessMs, s.RestartsPerTxn, s.LockWaits, s.Deadlocks)
	}

	fmt.Println("\nCCA prices the risk report's accumulated work into each order's")
	fmt.Println("priority, so the report is wounded less often than under EDF-HP.")
	fmt.Println("EDF-WP avoids aborts entirely at the cost of lock waits — and of the")
	fmt.Println("deadlocks CCA is immune to (paper Theorem 1).")
}
