// Quickstart: run the paper's base main-memory workload (Table 1) under
// EDF-HP and under CCA, averaged over the paper's 10 seeds, and print the
// comparison — the smallest complete use of the public API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const rate = 8 // transactions/second, a contended point (capacity is 12.5)

	fmt.Printf("Real-time transaction scheduling, Table 1 base workload at %v tr/s\n\n", rate)

	results := map[rtdbs.PolicyKind]rtdbs.Result{}
	for _, policy := range []rtdbs.PolicyKind{rtdbs.EDFHP, rtdbs.CCA} {
		cfg := rtdbs.MainMemoryConfig(policy, 1)
		cfg.Workload.ArrivalRate = rate

		agg, err := rtdbs.RunSeeds(cfg, rtdbs.Seeds(10))
		if err != nil {
			log.Fatal(err)
		}
		sum := agg.Summary()
		results[policy] = sum
		fmt.Printf("%-7s miss=%5.2f%%  mean lateness=%6.2f ms  restarts/txn=%.3f  cpu=%.0f%%\n",
			policy, sum.MissPercent, sum.MeanLatenessMs, sum.RestartsPerTxn, 100*sum.CPUUtilization)
	}

	edf, cca := results[rtdbs.EDFHP], results[rtdbs.CCA]
	fmt.Printf("\nCCA improvement over EDF-HP (the paper's metric, (EDF-CCA)/EDF x 100):\n")
	fmt.Printf("  miss percent : %5.1f%%\n", improvement(edf.MissPercent, cca.MissPercent))
	fmt.Printf("  mean lateness: %5.1f%%\n", improvement(edf.MeanLatenessMs, cca.MeanLatenessMs))
	fmt.Printf("  restarts/txn : %5.1f%%\n", improvement(edf.RestartsPerTxn, cca.RestartsPerTxn))
}

func improvement(baseline, candidate float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - candidate) / baseline * 100
}
