package rtdbs_test

import (
	"fmt"

	"repro"
)

// Example runs the paper's base main-memory workload under CCA for one
// seed and prints whether every transaction committed.
func Example() {
	cfg := rtdbs.MainMemoryConfig(rtdbs.CCA, 1)
	cfg.Workload.Count = 200
	cfg.Workload.ArrivalRate = 8

	res, err := rtdbs.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("committed %d/200, no lock waits: %v\n", res.Committed, res.LockWaits == 0)
	// Output:
	// committed 200/200, no lock waits: true
}

// ExampleRunSeeds averages a configuration over several seeds, as the
// paper averages each configuration over 10 or 30 runs.
func ExampleRunSeeds() {
	cfg := rtdbs.MainMemoryConfig(rtdbs.EDFHP, 1)
	cfg.Workload.Count = 100

	agg, err := rtdbs.RunSeeds(cfg, rtdbs.Seeds(5))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("runs aggregated: %d\n", agg.N())
	// Output:
	// runs aggregated: 5
}

// ExampleConflictBetween reproduces the paper's Figure 1/2 worked example:
// program A reads w and branches; program B always accesses I1..I3.
func ExampleConflictBetween() {
	a, _ := rtdbs.AnalyzeProgram(&rtdbs.Program{
		Name: "A",
		Root: &rtdbs.Node{
			Label: "A", Accesses: rtdbs.NewItemSet(0), // w
			Children: []*rtdbs.Node{
				{Label: "Aa", Accesses: rtdbs.NewItemSet(1, 2, 3)}, // w > 100
				{Label: "Ab", Accesses: rtdbs.NewItemSet(4, 5, 6)}, // w <= 100
			},
		},
	})
	b, _ := rtdbs.AnalyzeProgram(rtdbs.FlatProgram("B", 1, 2, 3))
	bState := rtdbs.StateAt(b, "B")

	fmt.Println(rtdbs.ConflictBetween(rtdbs.StateAt(a, "A"), bState))
	fmt.Println(rtdbs.ConflictBetween(rtdbs.StateAt(a, "Aa"), bState))
	fmt.Println(rtdbs.ConflictBetween(rtdbs.StateAt(a, "Ab"), bState))
	// Output:
	// conditionally-conflict
	// conflict
	// no-conflict
}

// ExampleExperimentByID regenerates (a scaled-down slice of) a paper
// figure programmatically.
func ExampleExperimentByID() {
	def, ok := rtdbs.ExperimentByID("4a")
	if !ok {
		fmt.Println("not found")
		return
	}
	def.Xs = []float64{6} // one sweep point for the example
	res, err := rtdbs.RunExperiment(def, rtdbs.ExperimentOptions{Seeds: 2, Count: 80})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	edf, cca := res.Summary(0, 0), res.Summary(0, 1)
	fmt.Printf("CCA misses no more than EDF-HP: %v\n", cca.MissPercent <= edf.MissPercent)
	// Output:
	// CCA misses no more than EDF-HP: true
}
