package rtdbs_test

import (
	"testing"

	"repro"
)

func TestRunFacade(t *testing.T) {
	cfg := rtdbs.MainMemoryConfig(rtdbs.CCA, 1)
	cfg.Workload.Count = 100
	res, err := rtdbs.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 100 {
		t.Fatalf("committed = %d", res.Committed)
	}
}

func TestRunSeedsAggregates(t *testing.T) {
	cfg := rtdbs.MainMemoryConfig(rtdbs.EDFHP, 1)
	cfg.Workload.Count = 60
	agg, err := rtdbs.RunSeeds(cfg, rtdbs.Seeds(3))
	if err != nil {
		t.Fatal(err)
	}
	if agg.N() != 3 {
		t.Fatalf("aggregated %d runs", agg.N())
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	if _, err := rtdbs.Run(rtdbs.Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := rtdbs.MainMemoryConfig("bogus", 1)
	if _, err := rtdbs.Run(cfg); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if _, err := rtdbs.RunSeeds(cfg, rtdbs.Seeds(2)); err == nil {
		t.Fatal("RunSeeds accepted bogus policy")
	}
}

func TestSeedsHelper(t *testing.T) {
	s := rtdbs.Seeds(3)
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Fatalf("Seeds(3) = %v", s)
	}
}

func TestPoliciesExposed(t *testing.T) {
	if len(rtdbs.Policies()) != 10 {
		t.Fatalf("policies = %v", rtdbs.Policies())
	}
}

func TestGenerateWorkloadFacade(t *testing.T) {
	cfg := rtdbs.MainMemoryConfig(rtdbs.CCA, 1)
	cfg.Workload.Count = 10
	wl, err := rtdbs.GenerateWorkload(cfg.Workload, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Txns) != 10 {
		t.Fatalf("generated %d txns", len(wl.Txns))
	}
	e, err := rtdbs.NewWithWorkload(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 10 {
		t.Fatalf("committed = %d", res.Committed)
	}
}

func TestExperimentFacade(t *testing.T) {
	if len(rtdbs.Experiments()) < 7 {
		t.Fatal("too few experiments exposed")
	}
	def, ok := rtdbs.ExperimentByID("4a")
	if !ok {
		t.Fatal("figure 4a not found")
	}
	def.Xs = []float64{4}
	res, err := rtdbs.RunExperiment(def, rtdbs.ExperimentOptions{Seeds: 2, Count: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables()) == 0 {
		t.Fatal("no tables rendered")
	}
}

func TestTablesFacade(t *testing.T) {
	if rtdbs.Table1().Text() == "" || rtdbs.Table2().Text() == "" {
		t.Fatal("parameter tables empty")
	}
}

// TestPaperExampleThroughFacade re-derives the §3.2.2 worked example using
// only the public API.
func TestPaperExampleThroughFacade(t *testing.T) {
	progA := &rtdbs.Program{
		Name: "A",
		Root: &rtdbs.Node{
			Label: "A", Accesses: rtdbs.NewItemSet(0),
			Children: []*rtdbs.Node{
				{Label: "Aa", Accesses: rtdbs.NewItemSet(1, 2, 3)},
				{Label: "Ab", Accesses: rtdbs.NewItemSet(4, 5, 6)},
			},
		},
	}
	a, err := rtdbs.AnalyzeProgram(progA)
	if err != nil {
		t.Fatal(err)
	}
	bAn, err := rtdbs.AnalyzeProgram(rtdbs.FlatProgram("B", 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	bState := rtdbs.StateAt(bAn, "B")

	if got := rtdbs.ConflictBetween(rtdbs.StateAt(a, "A"), bState); got != rtdbs.ConditionallyConflict {
		t.Errorf("A vs B = %v", got)
	}
	if got := rtdbs.ConflictBetween(rtdbs.StateAt(a, "Aa"), bState); got != rtdbs.Conflict {
		t.Errorf("Aa vs B = %v", got)
	}
	if got := rtdbs.ConflictBetween(rtdbs.StateAt(a, "Ab"), bState); got != rtdbs.NoConflict {
		t.Errorf("Ab vs B = %v", got)
	}
	if got := rtdbs.SafetyOf(rtdbs.StateAt(a, "Aa"), bState); got != rtdbs.Unsafe {
		t.Errorf("safety(Aa wrt B) = %v", got)
	}
	if got := rtdbs.SafetyOf(bState, rtdbs.StateAt(a, "A")); got != rtdbs.ConditionallyUnsafe {
		t.Errorf("safety(B wrt A) = %v", got)
	}
}

// TestHeadlineResult asserts the paper's core claim end-to-end through the
// facade: on the base workload at a contended rate, CCA improves on EDF-HP
// in miss percent, lateness and restarts.
func TestHeadlineResult(t *testing.T) {
	get := func(p rtdbs.PolicyKind) rtdbs.Result {
		cfg := rtdbs.MainMemoryConfig(p, 1)
		cfg.Workload.ArrivalRate = 8
		cfg.Workload.Count = 400
		agg, err := rtdbs.RunSeeds(cfg, rtdbs.Seeds(5))
		if err != nil {
			t.Fatal(err)
		}
		return agg.Summary()
	}
	edf, cca := get(rtdbs.EDFHP), get(rtdbs.CCA)
	if cca.MissPercent >= edf.MissPercent {
		t.Errorf("CCA miss %.2f%% >= EDF-HP %.2f%%", cca.MissPercent, edf.MissPercent)
	}
	if cca.MeanLatenessMs >= edf.MeanLatenessMs {
		t.Errorf("CCA lateness %.2f >= EDF-HP %.2f", cca.MeanLatenessMs, edf.MeanLatenessMs)
	}
	if cca.RestartsPerTxn >= edf.RestartsPerTxn {
		t.Errorf("CCA restarts %.3f >= EDF-HP %.3f", cca.RestartsPerTxn, edf.RestartsPerTxn)
	}
}
